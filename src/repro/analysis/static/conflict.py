"""Model-aware conflict-graph and critical-cycle analysis.

The dynamic analyses (`wellsync`, `fencesynth`, `compare`) answer
ordering questions by running the exponential enumerator.  This module
answers the same questions *statically*, in polynomial time, from two
ingredients:

* the **conflict graph** of a :class:`~repro.isa.program.Program` —
  program-order edges within threads, conflict edges between
  same-location cross-thread accesses where at least one writes,
* the model's :class:`~repro.models.base.ReorderingTable`, which decides
  which program-order edges the hardware already **enforces** (directly,
  through fences/acquire-release, via register dataflow, or
  transitively).

Following Shasha & Snir (paper §7), a relaxed outcome requires a
*critical cycle* — a minimal cycle alternating program-order and
conflict edges — in which **every** program-order edge left unenforced
by the model is simultaneously relaxed.  Hence:

* **required delay edges** under a model = the unenforced program-order
  pairs appearing in some critical cycle (all of them must be fenced to
  forbid the cycle's outcome),
* **suggested fence sites** = the insertion gaps covering those pairs,
* **predicted races** = conflict edges with a read side (a load whose
  value can come from more than one store).

All three are sound over-approximations of the enumerator's verdicts:
branches and register-computed addresses are handled conservatively
(every access may execute, a dynamic address may alias anything), and
enforcement is only claimed when the table, a fence chain, or a
definite dataflow chain proves it.  TAB-STATIC cross-validates this
against `wellsync` and `fencesynth` on the whole litmus library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Branch, OpClass
from repro.isa.operands import Const
from repro.isa.program import Program, Thread
from repro.models.base import MemoryModel, OrderRequirement
from repro.models.registry import get_model


@dataclass(frozen=True)
class StaticAccess:
    """One static memory access.  ``location`` is None when the address
    is register-computed (conservatively aliases every location)."""

    thread: str
    index: int  #: static instruction index within the thread
    kind: str  #: "R", "W", or "RW" (an RMW is both)
    location: str | None

    def reads(self) -> bool:
        return "R" in self.kind

    def writes(self) -> bool:
        return "W" in self.kind

    def may_alias(self, other: "StaticAccess") -> bool:
        if self.location is None or other.location is None:
            return True
        return self.location == other.location

    def __str__(self) -> str:
        where = self.location if self.location is not None else "?"
        return f"{self.thread}[{self.index}]:{self.kind}{where}"


@dataclass(frozen=True, order=True)
class DelayEdge:
    """A program-order pair in a critical cycle that the model does not
    enforce — it must be fenced to forbid the cycle's outcome."""

    thread: str
    first_index: int
    second_index: int

    def covers(self, position: int) -> bool:
        """Whether a fence inserted before ``position`` orders this pair."""
        return self.first_index < position <= self.second_index

    def __str__(self) -> str:
        return f"{self.thread}[{self.first_index} -> {self.second_index}]"


@dataclass(frozen=True)
class RacePrediction:
    """A load whose value may come from more than one store."""

    thread: str
    index: int
    location: str | None
    stores: tuple[StaticAccess, ...]  #: the conflicting writers

    def __str__(self) -> str:
        where = self.location if self.location is not None else "?"
        writers = ", ".join(str(s) for s in self.stores)
        return (
            f"load of {where!r} at {self.thread}[{self.index}] races with "
            f"{len(self.stores)} store(s): {writers}"
        )


@dataclass(frozen=True)
class SuggestedFence:
    """A fence insertion gap (before instruction ``position``) covering
    at least one required delay edge."""

    thread: str
    position: int

    def __str__(self) -> str:
        return f"{self.thread}@{self.position}"


@dataclass
class StaticReport:
    """The static verdicts for one program under one model."""

    program_name: str
    model_name: str
    accesses: tuple[StaticAccess, ...]
    critical_cycles: tuple[tuple[StaticAccess, ...], ...]
    live_cycles: tuple[tuple[StaticAccess, ...], ...]  #: cycles with a relaxed po edge
    races: tuple[RacePrediction, ...]
    delays: tuple[DelayEdge, ...]
    fence_sites: tuple[SuggestedFence, ...]
    conservative: bool  #: branches/dynamic addresses forced over-approximation

    def predicts_race(self, thread: str, location: str) -> bool:
        """Whether some predicted race could be the dynamic race observed
        on ``location`` in ``thread`` (a None location matches anything)."""
        return any(
            race.thread == thread
            and (race.location is None or race.location == location)
            for race in self.races
        )

    def covers_site(self, thread: str, position: int) -> bool:
        """Whether a fence at this insertion gap enforces a required
        delay edge (i.e. the site is statically predicted useful)."""
        return any(
            delay.thread == thread and delay.covers(position) for delay in self.delays
        )

    def summary(self) -> str:
        caveat = " [conservative: branches or dynamic addresses]" if self.conservative else ""
        lines = [
            f"{self.program_name} under {self.model_name}: "
            f"{len(self.critical_cycles)} critical cycle(s), "
            f"{len(self.live_cycles)} live, {len(self.races)} predicted race(s), "
            f"{len(self.delays)} required delay edge(s){caveat}"
        ]
        for cycle in self.live_cycles[:6]:
            lines.append("  cycle: " + " -> ".join(str(a) for a in cycle))
        if len(self.live_cycles) > 6:
            lines.append(f"  ... and {len(self.live_cycles) - 6} more")
        for race in self.races[:6]:
            lines.append(f"  race: {race}")
        if len(self.races) > 6:
            lines.append(f"  ... and {len(self.races) - 6} more")
        if self.delays:
            lines.append(
                "  delay edges: " + ", ".join(str(d) for d in self.delays)
            )
            lines.append(
                "  suggested fences: "
                + ", ".join(str(s) for s in self.fence_sites)
            )
        else:
            lines.append("  no fences required")
        return "\n".join(lines)


def _static_location(instruction) -> str | None:
    addr = instruction.addr_operand()
    if isinstance(addr, Const) and isinstance(addr.value, str):
        return addr.value
    return None


def collect_accesses(program: Program) -> tuple[StaticAccess, ...]:
    """All static memory accesses, conservatively assuming every one may
    execute (branches are not resolved statically)."""
    accesses = []
    for thread in program.threads:
        for index, instruction in enumerate(thread.code):
            if not instruction.op_class.is_memory():
                continue
            if instruction.op_class is OpClass.RMW:
                kind = "RW"
            elif instruction.op_class.writes_memory():
                kind = "W"
            else:
                kind = "R"
            accesses.append(
                StaticAccess(thread.name, index, kind, _static_location(instruction))
            )
    return tuple(accesses)


def _dataflow_edges(thread: Thread) -> set[tuple[int, int]]:
    """Definite register-dependency edges (writer -> reader) within a
    straight-line thread.  Register dataflow always orders instructions
    (the tables' implicit "indep" entries), but only the *last* writer
    before a reader is a definite dependency — and only when no branch
    can reroute control between them, so branchy threads contribute
    nothing here (their ordering comes from table entries alone)."""
    if any(isinstance(instruction, Branch) for instruction in thread.code):
        return set()
    edges: set[tuple[int, int]] = set()
    last_writer: dict[str, int] = {}
    for index, instruction in enumerate(thread.code):
        for register in instruction.sources():
            if register.name in last_writer:
                edges.add((last_writer[register.name], index))
        destination = instruction.dest()
        if destination is not None:
            last_writer[destination.name] = index
    return edges


def enforced_order(thread: Thread, model: MemoryModel) -> list[list[bool]]:
    """The per-thread enforced partial order: ``matrix[i][j]`` (i < j) is
    True when the model definitely keeps instruction ``i`` ordered before
    instruction ``j`` in every execution — by a table entry, a fence or
    acquire/release annotation, a definite dataflow edge, or a
    transitive chain of those."""
    size = len(thread.code)
    matrix = [[False] * size for _ in range(size)]
    for i in range(size):
        for j in range(i + 1, size):
            requirement = model.requirement(thread.code[i], thread.code[j])
            if requirement is OrderRequirement.ALWAYS:
                matrix[i][j] = True
            elif requirement is OrderRequirement.SAME_ADDRESS:
                first = _static_location(thread.code[i])
                second = _static_location(thread.code[j])
                matrix[i][j] = first is not None and first == second
    for i, j in _dataflow_edges(thread):
        matrix[i][j] = True
    # Transitive closure: ordered-before is transitive across the chain.
    for k in range(size):
        for i in range(k):
            if matrix[i][k]:
                row_k = matrix[k]
                row_i = matrix[i]
                for j in range(k + 1, size):
                    if row_k[j]:
                        row_i[j] = True
    return matrix


def _conflicting(a: StaticAccess, b: StaticAccess) -> bool:
    return a.thread != b.thread and a.may_alias(b) and (a.writes() or b.writes())


def find_critical_cycles(
    program: Program,
    accesses: tuple[StaticAccess, ...] | None = None,
    max_cycles: int = 10_000,
) -> tuple[tuple[StaticAccess, ...], ...]:
    """All minimal critical cycles of the conflict graph: simple cycles
    over program-order + conflict edges, at most two accesses per thread
    and three per location, never immediately backtracking a conflict
    edge.  Unlike :func:`repro.analysis.delays.find_critical_cycles`,
    this handles branches and dynamic addresses conservatively."""
    accesses = collect_accesses(program) if accesses is None else accesses
    cycles: list[tuple[StaticAccess, ...]] = []
    seen: set[frozenset[StaticAccess]] = set()
    order = {access: position for position, access in enumerate(accesses)}

    def successors(current: StaticAccess, came_by_conflict_from: StaticAccess | None):
        for candidate in accesses:
            if candidate is current:
                continue
            if candidate.thread == current.thread:
                if candidate.index > current.index:
                    yield candidate, "po"
            elif _conflicting(current, candidate):
                if came_by_conflict_from is not None and candidate is came_by_conflict_from:
                    continue  # no immediate backtracking
                yield candidate, "conflict"

    def extend(path: list[StaticAccess], kinds: list[str], start: StaticAccess) -> None:
        if len(cycles) >= max_cycles:
            return
        current = path[-1]
        came_from = path[-2] if kinds and kinds[-1] == "conflict" else None
        for nxt, kind in successors(current, came_from):
            if nxt is start:
                if len(path) >= 3 and "po" in kinds + [kind] and kind == "conflict":
                    candidate = tuple(path)
                    if _is_minimal(candidate) and frozenset(candidate) not in seen:
                        seen.add(frozenset(candidate))
                        cycles.append(candidate)
                continue
            if nxt in path:
                continue
            if order[nxt] < order[start]:
                continue  # canonical start: smallest node first
            extend(path + [nxt], kinds + [kind], start)

    for start in accesses:
        extend([start], [], start)
    return tuple(cycles)


def _is_minimal(cycle: tuple[StaticAccess, ...]) -> bool:
    """Shasha–Snir minimality: at most two accesses per thread, at most
    three per location (IRIW touches each location three times).  A
    dynamic address counts against every location, keyed by itself."""
    per_thread: dict[str, int] = {}
    per_location: dict[str, int] = {}
    for access in cycle:
        per_thread[access.thread] = per_thread.get(access.thread, 0) + 1
        key = access.location if access.location is not None else str(access)
        per_location[key] = per_location.get(key, 0) + 1
    if any(count > 2 for count in per_thread.values()):
        return False
    if any(count > 3 for count in per_location.values()):
        return False
    return True


def _cycle_po_pairs(
    cycle: tuple[StaticAccess, ...],
) -> list[tuple[StaticAccess, StaticAccess]]:
    pairs = []
    extended = cycle + (cycle[0],)
    for first, second in zip(extended, extended[1:]):
        if first.thread == second.thread and first.index < second.index:
            pairs.append((first, second))
    return pairs


def _predict_races(
    accesses: tuple[StaticAccess, ...], model: MemoryModel
) -> tuple[RacePrediction, ...]:
    """Loads whose value may come from more than one store.

    A cross-thread conflicting store always makes a load racy in some
    interleaving (the initial store is the competing candidate).  Local
    stores only add candidates when the model fails to keep same-address
    Store→Load pairs ordered — the registered models all do (via the
    x ≠ y entries or store-buffer forwarding), and the model linter
    flags tables that don't."""
    locally_coherent = model.store_load_bypass or (
        model.class_requirement(OpClass.STORE, OpClass.LOAD)
        >= OrderRequirement.SAME_ADDRESS
    )
    races = []
    for access in accesses:
        if not access.reads():
            continue
        remote = tuple(
            other
            for other in accesses
            if other.thread != access.thread
            and other.writes()
            and access.may_alias(other)
        )
        local = ()
        if not locally_coherent:
            local = tuple(
                other
                for other in accesses
                if other.thread == access.thread
                and other.index != access.index
                and other.writes()
                and access.may_alias(other)
            )
        writers = remote + local
        if writers:
            races.append(
                RacePrediction(access.thread, access.index, access.location, writers)
            )
    return tuple(races)


def analyze_program(program: Program, model: MemoryModel | str) -> StaticReport:
    """The full static analysis of ``program`` under ``model`` — no
    enumeration anywhere on this path."""
    if isinstance(model, str):
        model = get_model(model)
    accesses = collect_accesses(program)
    cycles = find_critical_cycles(program, accesses)
    enforced = {
        thread.name: enforced_order(thread, model) for thread in program.threads
    }

    live: list[tuple[StaticAccess, ...]] = []
    delays: set[DelayEdge] = set()
    for cycle in cycles:
        relaxed = [
            (first, second)
            for first, second in _cycle_po_pairs(cycle)
            if not enforced[first.thread][first.index][second.index]
        ]
        if relaxed:
            live.append(cycle)
            for first, second in relaxed:
                delays.add(DelayEdge(first.thread, first.index, second.index))

    sites = sorted(
        {SuggestedFence(delay.thread, delay.first_index + 1) for delay in delays},
        key=lambda site: (site.thread, site.position),
    )
    conservative = program.has_branches() or any(
        access.location is None for access in accesses
    )
    return StaticReport(
        program_name=program.name,
        model_name=model.name,
        accesses=accesses,
        critical_cycles=cycles,
        live_cycles=tuple(live),
        races=_predict_races(accesses, model),
        delays=tuple(sorted(delays)),
        fence_sites=tuple(sites),
        conservative=conservative,
    )
