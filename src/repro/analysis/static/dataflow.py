"""Forward dataflow analyses over mini-ISA programs.

This is the precision layer under the static delay-set analyzer
(:mod:`repro.analysis.static.conflict`) and the enumerator's candidate
pruning: per-thread CFGs (:mod:`repro.analysis.static.cfg`), reaching
definitions, constant propagation through ``Compute``, and an address
analysis that assigns every memory access a *value set* of addresses it
may touch.  From those sets, pairs of accesses get a
must-alias / may-alias / must-not-alias verdict.

Addresses flow through memory: a register-indirect access reads its
address from a location, so the analysis runs a whole-program fixpoint —
per-location value sets (initial value plus everything any store may
write there, flow-insensitive across threads, hence sound under *any*
reordering the models permit) alternate with flow-sensitive per-thread
passes until stable.  Value sets are widened to TOP (``None``) beyond
:data:`MAX_VALUES` members.

Threads with loops (CAS spinlocks) have no static instruction bound;
their facts degrade to the conservative PR-2 story — every access may
execute, register-computed addresses stay unknown — and
:attr:`ThreadFacts.analyzable` is False.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, TypeAlias

from repro.analysis.static.cfg import EXIT, ThreadCFG, build_cfg
from repro.errors import ExecutionError
from repro.isa.instructions import (
    Branch,
    Compute,
    Load,
    OpClass,
    Rmw,
    RmwKind,
    Store,
    alu_eval,
)
from repro.isa.operands import Const, Operand, Reg, Value
from repro.isa.program import Program, Thread

#: Pseudo definition index for "register still holds its initial 0".
ENTRY_DEF = -1

#: Value sets wider than this widen to TOP (``None`` = any value).
MAX_VALUES = 16

#: Cap on cartesian products when folding ALU ops over value sets.
_MAX_PRODUCT = 256

#: Safety bound on the cross-thread location-value fixpoint.
_MAX_ROUNDS = 32

ValueSet: TypeAlias = Optional[frozenset]


# ---------------------------------------------------------------------------
# shared static-access collection (used by isa.lint and conflict)


@dataclass(frozen=True)
class MemoryAccessSite:
    """One static memory instruction, conservatively collected: ``location``
    is the constant address, or None when register-computed."""

    thread: str
    tid: int
    index: int
    kind: str  #: "R", "W", or "RW"
    location: str | None


def access_kind(op_class: OpClass) -> str | None:
    """The R/W/RW kind of an instruction class, or None for non-memory."""
    if not op_class.is_memory():
        return None
    if op_class is OpClass.RMW:
        return "RW"
    return "W" if op_class.writes_memory() else "R"


def static_location(instruction) -> str | None:
    """The constant address of a memory instruction, if it has one."""
    addr = instruction.addr_operand()
    if isinstance(addr, Const) and isinstance(addr.value, str):
        return addr.value
    return None


def collect_memory_accesses(program: Program) -> tuple[MemoryAccessSite, ...]:
    """Every static memory access in the program, in (thread, index)
    order — the shared helper behind ``isa.lint`` location checks and
    ``conflict.collect_accesses``."""
    sites = []
    for tid, thread in enumerate(program.threads):
        for index, instruction in enumerate(thread.code):
            kind = access_kind(instruction.op_class)
            if kind is None:
                continue
            sites.append(
                MemoryAccessSite(
                    thread.name, tid, index, kind, static_location(instruction)
                )
            )
    return tuple(sites)


# ---------------------------------------------------------------------------
# value-set arithmetic


def join_values(a: ValueSet, b: ValueSet) -> ValueSet:
    if a is None or b is None:
        return None
    union = a | b
    return None if len(union) > MAX_VALUES else union


def _eval_alu(op: str, arg_sets: list[ValueSet]) -> ValueSet:
    if any(s is None for s in arg_sets):
        return None
    if not arg_sets:
        return None
    total = 1
    for s in arg_sets:
        total *= max(len(s), 1)
        if total > _MAX_PRODUCT:
            return None
    results: set[Value] = set()
    for combo in itertools.product(*arg_sets):
        try:
            results.add(alu_eval(op, combo))
        except ExecutionError:
            return None
    return None if len(results) > MAX_VALUES else frozenset(results)


# ---------------------------------------------------------------------------
# per-access / per-thread / per-program facts


@dataclass(frozen=True)
class AccessFacts:
    """What the dataflow pass knows about one static memory access."""

    index: int
    kind: str  #: "R", "W", or "RW"
    addresses: "frozenset[Value] | None"  #: possible addresses (None = any)
    stored_values: "frozenset[Value] | None"  #: writes only (None = any)
    may_execute: bool
    must_execute: bool

    @property
    def exact(self) -> bool:
        """A single certain address on an unconditionally-executed access."""
        return (
            self.must_execute
            and self.addresses is not None
            and len(self.addresses) == 1
        )


class AliasVerdict:
    """Tri-state alias relation between two access slots."""

    MUST = "must"
    MAY = "may"
    NEVER = "never"


@dataclass(frozen=True)
class ThreadFacts:
    """Dataflow results for one thread.

    When ``analyzable`` is False (the CFG has loops) only ``accesses``
    is populated — conservatively — and the reaching/aliasing maps are
    empty; consumers must fall back to their PR-2 behavior.
    """

    name: str
    tid: int
    analyzable: bool
    cfg: ThreadCFG
    accesses: "dict[int, AccessFacts]"
    #: (use index, register) -> def indices reaching the use (ENTRY_DEF = 0-init).
    reaching: "dict[tuple[int, str], frozenset[int]]"
    #: (writer index, reader index) pairs where the writer is the *unique*
    #: definition reaching the reader — definite register dependencies.
    definite_deps: frozenset[tuple[int, int]]
    #: statically unreachable instruction indices (dead branch arms).
    dead: frozenset[int]
    #: (index, register) uses that may read the initial 0 on some live path,
    #: or None when unknown (loops).
    maybe_uninit: "frozenset[tuple[int, str]] | None"

    def unique_def(self, index: int, register: str) -> int | None:
        """The single real definition reaching this use, if there is one."""
        defs = self.reaching.get((index, register))
        if defs is not None and len(defs) == 1:
            (only,) = defs
            if only != ENTRY_DEF:
                return only
        return None


@dataclass
class StaticFacts:
    """Whole-program dataflow facts, shared by the delay-set analyzer,
    the linter, and the enumerator's candidate pruning."""

    program: Program
    threads: tuple[ThreadFacts, ...]
    #: address -> values any execution may ever observe there (None = any).
    locations: "dict[Value, frozenset[Value] | None]"
    analyzable: bool  #: every thread analyzable (no loops)
    _store_slots: "dict[tuple[int, int], frozenset[tuple[int, int]] | None]" = field(
        default_factory=dict, repr=False, compare=False
    )

    # -- lookups -------------------------------------------------------

    def thread(self, tid: int) -> ThreadFacts:
        return self.threads[tid]

    def by_name(self, name: str) -> ThreadFacts:
        for facts in self.threads:
            if facts.name == name:
                return facts
        raise KeyError(name)

    def access(self, tid: int, index: int) -> AccessFacts | None:
        return self.threads[tid].accesses.get(index)

    def address_set(self, tid: int, index: int) -> "frozenset[Value] | None":
        access = self.access(tid, index)
        return None if access is None else access.addresses

    def is_dead(self, tid: int, index: int) -> bool:
        return index in self.threads[tid].dead

    # -- aliasing ------------------------------------------------------

    def pair_verdict(self, tid1: int, index1: int, tid2: int, index2: int) -> str:
        """Must/may/never alias verdict for two access slots."""
        first = self.address_set(tid1, index1)
        second = self.address_set(tid2, index2)
        if first is None or second is None:
            return AliasVerdict.MAY
        if not (first & second):
            return AliasVerdict.NEVER
        if len(first) == 1 and first == second:
            return AliasVerdict.MUST
        return AliasVerdict.MAY

    def store_slots_may_alias(
        self, tid: int, index: int
    ) -> "frozenset[tuple[int, int]] | None":
        """The (tid, index) store slots that may alias the load at the
        given slot — or None when the load's address is unknown (no
        pruning possible).  Cached; init stores are filtered separately
        through :meth:`address_set`."""
        key = (tid, index)
        if key not in self._store_slots:
            self._store_slots[key] = self._compute_store_slots(tid, index)
        return self._store_slots[key]

    def _compute_store_slots(
        self, tid: int, index: int
    ) -> "frozenset[tuple[int, int]] | None":
        addresses = self.address_set(tid, index)
        if addresses is None:
            return None
        allowed = set()
        for facts in self.threads:
            for slot, access in facts.accesses.items():
                if "W" not in access.kind or not access.may_execute:
                    continue
                if access.addresses is None or (access.addresses & addresses):
                    allowed.add((facts.tid, slot))
        return frozenset(allowed)


# ---------------------------------------------------------------------------
# the per-thread pass


def _operand_set(
    operand: Operand | None,
    env: "dict[str, frozenset[Value] | None]",
) -> ValueSet:
    if operand is None:
        return None
    if isinstance(operand, Const):
        return frozenset({operand.value})
    return env.get(operand.name, frozenset({0}))


def _load_result(
    addresses: ValueSet,
    locvals: "dict[Value, frozenset[Value] | None]",
    wildcard_store: bool,
) -> ValueSet:
    """Values a load from any of ``addresses`` may observe."""
    if addresses is None or wildcard_store:
        return None
    result: ValueSet = frozenset()
    for address in addresses:
        result = join_values(result, locvals.get(address, frozenset()))
        if result is None:
            break
    return result


@dataclass
class _ThreadPass:
    """Mutable scratch for one thread's flow-sensitive pass."""

    accesses: "dict[int, AccessFacts]" = field(default_factory=dict)
    reaching: "dict[tuple[int, str], frozenset[int]]" = field(default_factory=dict)
    branch_sets: "dict[int, frozenset[Value] | None]" = field(default_factory=dict)
    live_edges: frozenset = frozenset()
    live_blocks: frozenset = frozenset()


def _degraded_facts(thread: Thread, tid: int, cfg: ThreadCFG) -> ThreadFacts:
    """Loop fallback: every access may execute, register addresses are
    unknown — exactly the PR-2 conservative story."""
    accesses = {}
    for index, instruction in enumerate(thread.code):
        kind = access_kind(instruction.op_class)
        if kind is None:
            continue
        location = static_location(instruction)
        accesses[index] = AccessFacts(
            index=index,
            kind=kind,
            addresses=frozenset({location}) if location is not None else None,
            stored_values=None,
            may_execute=True,
            must_execute=False,
        )
    return ThreadFacts(
        name=thread.name,
        tid=tid,
        analyzable=False,
        cfg=cfg,
        accesses=accesses,
        reaching={},
        definite_deps=frozenset(),
        dead=frozenset(),
        maybe_uninit=None,
    )


def _run_thread_pass(
    thread: Thread,
    cfg: ThreadCFG,
    locvals: "dict[Value, frozenset[Value] | None]",
    wildcard_store: bool,
) -> _ThreadPass:
    """One flow-sensitive pass (constant propagation + reaching defs)
    over an acyclic CFG, iterating dead-arm discovery to a fixpoint."""
    result = _ThreadPass()
    code = thread.code
    rpo = cfg.reverse_postorder()
    all_edges = cfg.edges()
    live_edges = all_edges

    preds: dict[int, list[int]] = {block.bid: [] for block in cfg.blocks}
    for bid, succ in all_edges:
        if succ != EXIT:
            preds[succ].append(bid)

    for _ in range(len(cfg.blocks) + 2):
        live_blocks = cfg.live_blocks(live_edges)
        out_env: dict[int, dict] = {}
        out_reach: dict[int, dict] = {}
        result.accesses.clear()
        result.reaching.clear()
        result.branch_sets.clear()

        for bid in rpo:
            if bid not in live_blocks:
                continue
            env: dict[str, ValueSet] = {}
            reach: dict[str, frozenset[int]] = {}
            live_preds = [
                p for p in preds[bid] if p in live_blocks and (p, bid) in live_edges
            ]
            for position, pred in enumerate(live_preds):
                pred_env = out_env[pred]
                pred_reach = out_reach[pred]
                if position == 0:
                    env = dict(pred_env)
                    reach = dict(pred_reach)
                    continue
                for name in set(env) | set(pred_env):
                    env[name] = join_values(
                        env.get(name, frozenset({0})),
                        pred_env.get(name, frozenset({0})),
                    )
                for name in set(reach) | set(pred_reach):
                    reach[name] = reach.get(
                        name, frozenset({ENTRY_DEF})
                    ) | pred_reach.get(name, frozenset({ENTRY_DEF}))

            for index in cfg.blocks[bid].indices():
                instruction = code[index]
                for register in instruction.sources():
                    result.reaching[(index, register.name)] = reach.get(
                        register.name, frozenset({ENTRY_DEF})
                    )
                _transfer(instruction, index, env, reach, locvals, wildcard_store, result)

            out_env[bid] = env
            out_reach[bid] = reach

        new_live = _prune_dead_arms(cfg, result.branch_sets, live_edges)
        if new_live == live_edges:
            result.live_edges = live_edges
            result.live_blocks = live_blocks
            return result
        live_edges = new_live

    result.live_edges = live_edges
    result.live_blocks = cfg.live_blocks(live_edges)
    return result


def _transfer(
    instruction,
    index: int,
    env: "dict[str, ValueSet]",
    reach: "dict[str, frozenset[int]]",
    locvals: "dict[Value, frozenset[Value] | None]",
    wildcard_store: bool,
    result: _ThreadPass,
) -> None:
    dst_values: ValueSet = None
    if isinstance(instruction, Compute):
        dst_values = _eval_alu(
            instruction.op, [_operand_set(arg, env) for arg in instruction.args]
        )
    elif isinstance(instruction, Load):
        addresses = _operand_set(instruction.addr, env)
        dst_values = _load_result(addresses, locvals, wildcard_store)
        result.accesses[index] = AccessFacts(index, "R", addresses, None, True, True)
    elif isinstance(instruction, Store):
        addresses = _operand_set(instruction.addr, env)
        stored = _operand_set(instruction.value, env)
        result.accesses[index] = AccessFacts(index, "W", addresses, stored, True, True)
    elif isinstance(instruction, Rmw):
        addresses = _operand_set(instruction.addr, env)
        old = _load_result(addresses, locvals, wildcard_store)
        dst_values = old
        if instruction.kind is RmwKind.EXCHANGE:
            stored = _operand_set(instruction.args[0], env)
        elif instruction.kind is RmwKind.CAS:
            stored = _operand_set(instruction.args[1], env)
        else:  # FETCH_ADD
            stored = _eval_alu("add", [old, _operand_set(instruction.args[0], env)])
        result.accesses[index] = AccessFacts(index, "RW", addresses, stored, True, True)
    elif isinstance(instruction, Branch):
        if instruction.cond is not None:
            result.branch_sets[index] = _operand_set(instruction.cond, env)

    destination = instruction.dest()
    if destination is not None:
        env[destination.name] = dst_values
        reach[destination.name] = frozenset({index})


def _prune_dead_arms(
    cfg: ThreadCFG,
    branch_sets: "dict[int, frozenset[Value] | None]",
    live_edges: frozenset,
) -> frozenset:
    """Drop branch edges whose direction the condition value set rules
    out.  The dead set only grows, so the caller's loop terminates."""
    dead: set[tuple[int, int]] = set()
    for block in cfg.blocks:
        branch = cfg.terminator(block.bid)
        if branch is None or branch.cond is None:
            continue
        values = branch_sets.get(block.end - 1)
        if values is None:
            continue
        taken_possible = any(branch.taken(v) for v in values)
        fall_possible = any(not branch.taken(v) for v in values)
        taken_to = cfg.taken_succ[block.bid]
        fall_to = cfg.fall_succ[block.bid]
        if taken_to == fall_to:
            continue  # both arms land in the same place
        if not taken_possible and taken_to is not None:
            dead.add((block.bid, taken_to))
        if not fall_possible and fall_to is not None:
            dead.add((block.bid, fall_to))
    return frozenset(edge for edge in live_edges if edge not in dead)


def _finalize_thread(
    thread: Thread, tid: int, cfg: ThreadCFG, scratch: _ThreadPass
) -> ThreadFacts:
    live_instructions = {
        index
        for bid in scratch.live_blocks
        for index in cfg.blocks[bid].indices()
    }
    dead = frozenset(range(len(thread.code))) - live_instructions
    unavoidable = cfg.unavoidable_blocks(scratch.live_edges)
    must_instructions = {
        index for bid in unavoidable for index in cfg.blocks[bid].indices()
    }

    accesses = {
        index: AccessFacts(
            index=facts.index,
            kind=facts.kind,
            addresses=facts.addresses,
            stored_values=facts.stored_values,
            may_execute=True,
            must_execute=index in must_instructions,
        )
        for index, facts in scratch.accesses.items()
        if index in live_instructions
    }

    reaching = {
        key: defs for key, defs in scratch.reaching.items() if key[0] in live_instructions
    }
    definite = frozenset(
        (next(iter(defs)), index)
        for (index, _register), defs in reaching.items()
        if len(defs) == 1 and ENTRY_DEF not in defs
    )
    maybe_uninit = frozenset(
        (index, register)
        for (index, register), defs in reaching.items()
        if ENTRY_DEF in defs
    )
    return ThreadFacts(
        name=thread.name,
        tid=tid,
        analyzable=True,
        cfg=cfg,
        accesses=accesses,
        reaching=reaching,
        definite_deps=definite,
        dead=dead,
        maybe_uninit=maybe_uninit,
    )


# ---------------------------------------------------------------------------
# the whole-program fixpoint


def compute_static_facts(program: Program) -> StaticFacts:
    """Run the cross-thread dataflow fixpoint over ``program``.

    Location value sets start at the initial values and grow with every
    store any thread may perform; per-thread constant propagation reruns
    until the location sets stabilize.  Model-independent: the facts are
    sound under any reordering because the location sets are
    flow-insensitive across threads.
    """
    cfgs = [build_cfg(thread) for thread in program.threads]
    locvals: dict[Value, ValueSet] = {
        location: frozenset({program.initial_value(location)})
        for location in program.locations()
    }
    wildcard_store = False
    passes: list[_ThreadPass | None] = [None] * len(program.threads)

    for _ in range(_MAX_ROUNDS):
        new_locvals: dict[Value, ValueSet] = {
            location: frozenset({program.initial_value(location)})
            for location in program.locations()
        }
        new_wildcard = False
        for tid, thread in enumerate(program.threads):
            if cfgs[tid].has_loops:
                passes[tid] = None
                # Conservative store contribution from the degraded thread.
                for index, instruction in enumerate(thread.code):
                    if not instruction.op_class.writes_memory():
                        continue
                    location = static_location(instruction)
                    if location is None:
                        new_wildcard = True
                    else:
                        new_locvals[location] = None
                continue
            scratch = _run_thread_pass(thread, cfgs[tid], locvals, wildcard_store)
            passes[tid] = scratch
            live = {
                index
                for bid in scratch.live_blocks
                for index in cfgs[tid].blocks[bid].indices()
            }
            for index, access in scratch.accesses.items():
                if "W" not in access.kind or index not in live:
                    continue
                if access.addresses is None:
                    new_wildcard = True
                    continue
                for address in access.addresses:
                    new_locvals[address] = join_values(
                        new_locvals.get(address, frozenset()), access.stored_values
                    )
        if new_wildcard:
            new_locvals = {location: None for location in new_locvals}
        if new_locvals == locvals and new_wildcard == wildcard_store:
            break
        locvals = new_locvals
        wildcard_store = new_wildcard
    else:
        # No convergence within the bound (should not happen: the lattice
        # is finite) — drop to TOP everywhere.
        locvals = {location: None for location in locvals}
        wildcard_store = True
        passes = [None] * len(program.threads)

    threads = []
    for tid, thread in enumerate(program.threads):
        scratch = passes[tid]
        if scratch is None:
            threads.append(_degraded_facts(thread, tid, cfgs[tid]))
        else:
            threads.append(_finalize_thread(thread, tid, cfgs[tid], scratch))

    return StaticFacts(
        program=program,
        threads=tuple(threads),
        locations=locvals,
        analyzable=all(facts.analyzable for facts in threads),
    )


def describe_facts(facts: StaticFacts) -> str:
    """A human-readable dump for the ``repro dataflow`` CLI command."""

    def fmt_values(values: Iterable[Value] | None) -> str:
        if values is None:
            return "⊤"
        inner = ", ".join(repr(v) for v in sorted(values, key=repr))
        return "{" + inner + "}"

    lines = [f"program {facts.program.name!r}:"]
    for thread in facts.threads:
        header = f"  thread {thread.name}:"
        if not thread.analyzable:
            lines.append(header + " CFG has loops — conservative facts only")
            continue
        cfg = thread.cfg
        lines.append(
            header
            + f" {len(cfg.blocks)} block(s), "
            + f"{len(thread.accesses)} live memory access(es)"
        )
        for index in sorted(thread.accesses):
            access = thread.accesses[index]
            flags = []
            if access.must_execute:
                flags.append("must-execute")
            elif access.may_execute:
                flags.append("may-execute")
            if access.exact:
                flags.append("exact")
            lines.append(
                f"    [{index}] {access.kind} addr={fmt_values(access.addresses)}"
                + (
                    f" stores={fmt_values(access.stored_values)}"
                    if "W" in access.kind
                    else ""
                )
                + f" ({', '.join(flags)})"
            )
        if thread.dead:
            lines.append(
                "    dead instructions: "
                + ", ".join(str(i) for i in sorted(thread.dead))
            )
        if thread.definite_deps:
            deps = ", ".join(
                f"{w}->{r}" for w, r in sorted(thread.definite_deps)
            )
            lines.append(f"    definite register deps: {deps}")
    lines.append("  location value sets:")
    for location in sorted(facts.locations, key=repr):
        lines.append(f"    {location!r}: {fmt_values(facts.locations[location])}")
    return "\n".join(lines)
