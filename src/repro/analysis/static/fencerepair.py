"""Static minimal fence repair: weighted set cover over delay edges.

:func:`repro.analysis.static.conflict.analyze_program` computes, in
polynomial time, the **delay edges** — program-order pairs inside live
critical cycles that the model leaves unenforced.  By Shasha & Snir
(paper §7) a critical cycle is observable iff at least one of its
program-order edges is relaxed, so a program is SC-robust exactly when
every delay edge is enforced, and a *minimal repair* is a minimum set
of insertions covering all delay edges.  This module solves that cover
problem exactly, with no enumeration anywhere:

* a full fence at gap ``p`` covers delay ``(i, j)`` iff ``i < p <= j``
  (a fence orders everything before it with everything after; combined
  with table edges, transitive chains never enforce a pair that does
  not itself span the gap),
* an **acquire upgrade** of a load at ``k`` covers delays starting at
  ``k``; a **release upgrade** of a store at ``k`` covers delays ending
  at ``k`` (half-fence semantics of
  :meth:`repro.models.base.MemoryModel.requirement`),
* actions are priced by the model table: the cost of an action is the
  number of program-order pairs it newly enforces, so a half-fence that
  suffices is preferred over a full fence that over-orders.

Two entry points share the machinery.  :func:`repair_fences` restricts
to full fences over the shared :func:`repro.analysis.sites.candidate_sites`
vocabulary and minimizes *cardinality* — its solution list is
byte-identical to ``synthesize_fences(..., target="robust")`` whenever
the analysis is exact (gated on the whole litmus library by
TAB-FENCEREPAIR and BENCH_fencesynth.json).  :func:`repair_upgrades`
admits acquire/release upgrades and minimizes total table cost.

The exact solver is a branch-and-bound on the uncovered element with
the fewest coverers, seeded by a greedy upper bound, returning *all*
minimum solutions in the candidate vocabulary's combination order.
Fences add no memory accesses, so repairs never create new cycles —
covering the static delay set is sound even when provenance is
over-approximated (it can only over-fence, never under-fence).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.analysis.sites import FenceSite, candidate_sites, insert_fences
from repro.analysis.static.conflict import (
    DelayEdge,
    StaticReport,
    analyze_program,
    enforced_order,
)
from repro.analysis.static.dataflow import StaticFacts, compute_static_facts
from repro.isa.instructions import Load, Rmw, Store
from repro.isa.program import Program, Thread
from repro.models.base import MemoryModel
from repro.models.registry import get_model

__all__ = [
    "FenceRepairResult",
    "RepairAction",
    "UpgradeRepairResult",
    "apply_repairs",
    "repair_fences",
    "repair_upgrades",
]

#: Safety valve for the exact search; library programs use a few dozen
#: nodes, so hitting this means a pathological generated program.
MAX_SEARCH_NODES = 200_000


# ---------------------------------------------------------------------------
# the exact all-minimum-covers solver


def _greedy_cover(
    element_count: int,
    covers: list[frozenset[int]],
    costs: list[int],
) -> list[int] | None:
    """Greedy weighted set cover: repeatedly take the candidate with the
    best newly-covered-per-cost ratio (lowest index on ties).  Returns
    None when some element is uncoverable."""
    uncovered = set(range(element_count))
    chosen: list[int] = []
    while uncovered:
        best_index: int | None = None
        best_gain = 0
        best_cost = 1
        for index, cover in enumerate(covers):
            gain = len(cover & uncovered)
            if gain == 0:
                continue
            # gain/cost > best_gain/best_cost, compared without floats
            if best_index is None or gain * best_cost > best_gain * costs[index]:
                best_index, best_gain, best_cost = index, gain, costs[index]
        if best_index is None:
            return None
        chosen.append(best_index)
        uncovered -= covers[best_index]
    return chosen


def _all_minimum_covers(
    element_count: int,
    covers: list[frozenset[int]],
    costs: list[int],
) -> tuple[int | None, list[tuple[int, ...]], int, bool]:
    """All minimum-cost covers of ``range(element_count)``.

    Returns ``(best_cost, solutions, nodes, complete)`` where solutions
    are index tuples sorted ascending, listed in lexicographic order —
    the same order ``itertools.combinations`` over the candidate list
    yields them, so the enumerative search agrees byte-for-byte.
    ``best_cost`` is None when some element has no coverer; ``complete``
    is False if the node budget truncated the search.
    """
    if element_count == 0:
        return 0, [()], 0, True
    coverers: list[list[int]] = [[] for _ in range(element_count)]
    for index, cover in enumerate(covers):
        for element in cover:
            coverers[element].append(index)
    if any(not options for options in coverers):
        return None, [], 0, True

    greedy = _greedy_cover(element_count, covers, costs)
    assert greedy is not None  # every element had a coverer
    best = sum(costs[index] for index in greedy)
    solutions: set[tuple[int, ...]] = set()
    nodes = 0
    complete = True
    full = frozenset(range(element_count))

    def search(uncovered: frozenset[int], chosen: tuple[int, ...], cost: int) -> None:
        nonlocal best, nodes, complete
        if nodes >= MAX_SEARCH_NODES:
            complete = False
            return
        nodes += 1
        if cost > best:
            return
        if not uncovered:
            if cost < best:
                best = cost
                solutions.clear()
            solutions.add(tuple(sorted(chosen)))
            return
        element = min(uncovered, key=lambda e: len(coverers[e]))
        for index in coverers[element]:
            search(uncovered - covers[index], chosen + (index,), cost + costs[index])

    search(full, (), 0)
    return best, sorted(solutions), nodes, complete


# ---------------------------------------------------------------------------
# full-fence repair (the mode cross-validated against enumeration)


@dataclass
class FenceRepairResult:
    """Statically-computed minimal full-fence repairs making a program
    SC-robust under a model.  Mirrors
    :class:`repro.analysis.fencesynth.FenceSynthesisResult` so the two
    can be compared field-by-field."""

    program_name: str
    model_name: str
    sites: tuple[FenceSite, ...]  #: the shared candidate vocabulary
    delays: tuple[DelayEdge, ...]  #: the cover universe
    solutions: list[tuple[FenceSite, ...]]  #: all minimum-size covers
    already_robust: bool
    exact: bool  #: every delay edge has exact provenance
    report: StaticReport
    nodes_explored: int = 0
    complete: bool = True
    greedy: tuple[FenceSite, ...] | None = None  #: greedy upper bound

    @property
    def fence_count(self) -> int | None:
        """Size of the minimal repairs (0 when already robust, None
        when no full-fence placement can cover every delay)."""
        if self.already_robust:
            return 0
        if not self.solutions:
            return None
        return len(self.solutions[0])

    def summary(self) -> str:
        caveat = "" if self.exact else " [over-approximated provenance]"
        if self.already_robust:
            return (
                f"{self.program_name} under {self.model_name}: SC-robust, "
                f"no fences needed{caveat}"
            )
        if not self.solutions:
            return (
                f"{self.program_name} under {self.model_name}: "
                f"{len(self.delays)} delay edge(s) but NO full-fence "
                f"placement covers them all{caveat}"
            )
        rendered = " | ".join(
            "{" + ", ".join(str(site) for site in solution) + "}"
            for solution in self.solutions
        )
        return (
            f"{self.program_name} under {self.model_name}: {self.fence_count} "
            f"fence(s) repair {len(self.delays)} delay edge(s); minimal "
            f"placements: {rendered}{caveat}"
        )


def repair_fences(
    program: Program,
    model: MemoryModel | str,
    *,
    facts: StaticFacts | None = None,
    report: StaticReport | None = None,
) -> FenceRepairResult:
    """All minimum-cardinality full-fence insertions making ``program``
    SC-robust under ``model`` — computed purely statically as a set
    cover of the delay edges by the shared candidate-site vocabulary.

    When the report's provenance is exact, the solution list is
    byte-identical to the enumerative
    ``synthesize_fences(program, model, target="robust")``; when it is
    over-approximated the static answer may fence more (never less) —
    a conservative repair, still sound.
    """
    if isinstance(model, str):
        model = get_model(model)
    if report is None:
        report = analyze_program(
            program, model, facts=facts, bypass_coherence=True
        )
    sites = candidate_sites(program)
    delays = report.delays
    exact = all(delay.exact for delay in delays)

    if not delays:
        return FenceRepairResult(
            program_name=program.name,
            model_name=model.name,
            sites=sites,
            delays=delays,
            solutions=[],
            already_robust=True,
            exact=True,  # no-delay certificates are sound unconditionally
            report=report,
        )

    covers = [
        frozenset(
            position
            for position, delay in enumerate(delays)
            if delay.thread == site.thread and delay.covers(site.position)
        )
        for site in sites
    ]
    costs = [1] * len(sites)
    best, index_solutions, nodes, complete = _all_minimum_covers(
        len(delays), covers, costs
    )
    greedy_indices = _greedy_cover(len(delays), covers, costs)
    greedy = (
        tuple(sites[index] for index in sorted(greedy_indices))
        if greedy_indices is not None
        else None
    )
    solutions = [
        tuple(sites[index] for index in solution) for solution in index_solutions
    ]
    return FenceRepairResult(
        program_name=program.name,
        model_name=model.name,
        sites=sites,
        delays=delays,
        solutions=solutions,
        already_robust=False,
        exact=exact,
        report=report,
        nodes_explored=nodes,
        complete=complete,
        greedy=greedy,
    )


# ---------------------------------------------------------------------------
# weighted repair with acquire/release upgrades


@dataclass(frozen=True, order=True)
class RepairAction:
    """One repair step: a full fence inserted at a gap, or an
    acquire/release upgrade of an existing access.  ``position`` is the
    insertion gap for fences and the instruction index for upgrades.
    ``cost`` is the number of program-order pairs the action newly
    enforces under the model — the table-priced weight minimized by
    :func:`repair_upgrades`."""

    thread: str
    position: int
    kind: str  #: "fence", "acquire", or "release"
    cost: int

    def __str__(self) -> str:
        if self.kind == "fence":
            return f"fence@{self.thread}@{self.position} (cost {self.cost})"
        return f"{self.kind}@{self.thread}[{self.position}] (cost {self.cost})"


@dataclass
class UpgradeRepairResult:
    """All minimum-total-cost repair plans mixing full fences with
    acquire/release upgrades."""

    program_name: str
    model_name: str
    actions: tuple[RepairAction, ...]  #: the candidate vocabulary
    delays: tuple[DelayEdge, ...]
    solutions: list[tuple[RepairAction, ...]]  #: all minimum-cost plans
    already_robust: bool
    exact: bool
    best_cost: int | None = None
    nodes_explored: int = 0
    complete: bool = True

    def summary(self) -> str:
        caveat = "" if self.exact else " [over-approximated provenance]"
        if self.already_robust:
            return (
                f"{self.program_name} under {self.model_name}: SC-robust, "
                f"no repair needed{caveat}"
            )
        if not self.solutions:
            return (
                f"{self.program_name} under {self.model_name}: "
                f"no repair covers all {len(self.delays)} delay edge(s){caveat}"
            )
        rendered = " | ".join(
            "{" + ", ".join(str(action) for action in solution) + "}"
            for solution in self.solutions
        )
        return (
            f"{self.program_name} under {self.model_name}: cheapest repair "
            f"costs {self.best_cost} newly-enforced pair(s): {rendered}{caveat}"
        )


def _action_candidates(
    program: Program, model: MemoryModel, facts: StaticFacts | None
) -> tuple[RepairAction, ...]:
    """The weighted vocabulary: every shared fence site plus every legal
    acquire/release upgrade, each priced by its newly-enforced pairs
    against the model's enforced-order matrix."""
    actions: list[RepairAction] = []
    matrices = {
        thread.name: enforced_order(thread, model, facts, bypass_coherence=True)
        for thread in program.threads
    }
    by_name: dict[str, Thread] = {thread.name: thread for thread in program.threads}
    for site in candidate_sites(program):
        matrix = matrices[site.thread]
        size = len(by_name[site.thread].code)
        cost = sum(
            1
            for i in range(site.position)
            for j in range(site.position, size)
            if not matrix[i][j]
        )
        actions.append(RepairAction(site.thread, site.position, "fence", max(cost, 1)))
    for thread in program.threads:
        matrix = matrices[thread.name]
        size = len(thread.code)
        for index, instruction in enumerate(thread.code):
            if isinstance(instruction, (Load, Rmw)) and not instruction.acquire:
                cost = sum(1 for j in range(index + 1, size) if not matrix[index][j])
                if cost:
                    actions.append(
                        RepairAction(thread.name, index, "acquire", cost)
                    )
            if isinstance(instruction, (Store, Rmw)) and not instruction.release:
                cost = sum(1 for i in range(index) if not matrix[i][index])
                if cost:
                    actions.append(
                        RepairAction(thread.name, index, "release", cost)
                    )
    return tuple(actions)


def _action_covers(action: RepairAction, delay: DelayEdge) -> bool:
    if action.thread != delay.thread:
        return False
    if action.kind == "fence":
        return delay.covers(action.position)
    if action.kind == "acquire":
        return delay.first_index == action.position
    return delay.second_index == action.position


def repair_upgrades(
    program: Program,
    model: MemoryModel | str,
    *,
    facts: StaticFacts | None = None,
    report: StaticReport | None = None,
) -> UpgradeRepairResult:
    """All minimum-total-cost repairs over the weighted vocabulary
    (full fences + acquire/release upgrades), covering every delay
    edge.  The cost of a plan is the number of program-order pairs it
    newly enforces — so a single-edge half-fence beats a whole-gap
    fence whenever it suffices."""
    if isinstance(model, str):
        model = get_model(model)
    if facts is None:
        facts = compute_static_facts(program)
    if report is None:
        report = analyze_program(
            program, model, facts=facts, bypass_coherence=True
        )
    delays = report.delays
    exact = all(delay.exact for delay in delays)
    actions = _action_candidates(program, model, facts)
    if not delays:
        return UpgradeRepairResult(
            program_name=program.name,
            model_name=model.name,
            actions=actions,
            delays=delays,
            solutions=[],
            already_robust=True,
            exact=True,
            best_cost=0,
        )
    covers = [
        frozenset(
            position
            for position, delay in enumerate(delays)
            if _action_covers(action, delay)
        )
        for action in actions
    ]
    costs = [action.cost for action in actions]
    best, index_solutions, nodes, complete = _all_minimum_covers(
        len(delays), covers, costs
    )
    solutions = [
        tuple(actions[index] for index in solution) for solution in index_solutions
    ]
    return UpgradeRepairResult(
        program_name=program.name,
        model_name=model.name,
        actions=actions,
        delays=delays,
        solutions=solutions,
        already_robust=False,
        exact=exact,
        best_cost=best,
        nodes_explored=nodes,
        complete=complete,
    )


def apply_repairs(program: Program, actions: tuple[RepairAction, ...]) -> Program:
    """A copy of ``program`` with a repair plan applied: acquire/release
    upgrades rewrite instructions in place (original indices), then full
    fences are inserted at their gaps."""
    threads = []
    for thread in program.threads:
        code = list(thread.code)
        for action in actions:
            if action.thread != thread.name or action.kind == "fence":
                continue
            instruction = code[action.position]
            if action.kind == "acquire":
                code[action.position] = dc_replace(instruction, acquire=True)
            else:
                code[action.position] = dc_replace(instruction, release=True)
        threads.append(Thread(thread.name, tuple(code), dict(thread.labels)))
    upgraded = Program(tuple(threads), dict(program.initial_memory), program.name)
    fence_sites = tuple(
        FenceSite(action.thread, action.position)
        for action in actions
        if action.kind == "fence"
    )
    return insert_fences(upgraded, fence_sites)
