"""The shared fence-site vocabulary.

Both fence synthesizers — the enumerative search in
:mod:`repro.analysis.fencesynth` and the static set-cover pass in
:mod:`repro.analysis.static.fencerepair` — describe repairs in the same
coordinates, so their results can be compared byte-for-byte:

* a :class:`FenceSite` names an insertion *gap*: before instruction
  ``position`` of ``thread`` (``position`` ranges over 1..len(code)-1),
* :func:`candidate_sites` is the canonical candidate vocabulary for a
  program (both searches draw subsets from exactly this tuple, in
  exactly this order),
* :func:`insert_fences` applies a site set, shifting labels correctly.

Historically the static analyzer had its own ``SuggestedFence`` type
with the same fields; it is now an alias of :class:`FenceSite`.

This module is dependency-light on purpose: it imports only the ISA, so
the static layer can use it without touching the enumerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Fence
from repro.isa.program import Program, Thread


@dataclass(frozen=True, order=True)
class FenceSite:
    """A fence insertion point: before instruction ``position`` of
    ``thread`` (so ``position`` ranges over 1..len(code)-1)."""

    thread: str
    position: int

    def __str__(self) -> str:
        return f"{self.thread}@{self.position}"


def candidate_sites(program: Program) -> tuple[FenceSite, ...]:
    """All gaps between consecutive instructions where at least one
    neighbor is a memory operation (fences elsewhere cannot matter).

    Gaps **adjacent to an existing fence** are skipped: a new fence next
    to an old one adds no ordering the old one does not already provide,
    so on a partially-fenced program the search space shrinks to the
    genuinely unfenced gaps.  (If the existing fence is a weak
    fine-grained kind that leaves some pair unordered, neither would a
    second fence in the same gap change that pair's *gap* — the pair
    spans the same insertion points — so the skip never hides a repair
    that some non-adjacent gap could not also express.)
    """
    sites = []
    for thread in program.threads:
        for position in range(1, len(thread.code)):
            before = thread.code[position - 1]
            after = thread.code[position]
            if before.op_class.is_memory() or after.op_class.is_memory():
                if not isinstance(before, Fence) and not isinstance(after, Fence):
                    sites.append(FenceSite(thread.name, position))
    return tuple(sites)


def insert_fences(program: Program, sites: tuple[FenceSite, ...]) -> Program:
    """A copy of ``program`` with full fences inserted at ``sites``."""
    by_thread: dict[str, list[int]] = {}
    for site in sites:
        by_thread.setdefault(site.thread, []).append(site.position)
    threads = []
    for thread in program.threads:
        positions = sorted(by_thread.get(thread.name, []), reverse=True)
        code = list(thread.code)
        labels = dict(thread.labels)
        for position in positions:
            code.insert(position, Fence())
            labels = {
                name: (index + 1 if index >= position else index)
                for name, index in labels.items()
            }
        threads.append(Thread(thread.name, tuple(code), labels))
    return Program(tuple(threads), dict(program.initial_memory), program.name)


__all__ = ["FenceSite", "candidate_sites", "insert_fences"]
