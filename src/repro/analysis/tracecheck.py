"""Post-mortem trace checking, TSOtool-style (paper §7 and §8).

    "It should be relatively easy to take a program execution and
    demonstrate that it is correct according to a given memory model
    without the need to compute serializations.  Graph-based approaches
    such as TSOtool [12] have already demonstrated their effectiveness
    in this area."

A *trace* is what a silicon-validation harness observes: per thread, the
program-order sequence of memory operations with store data and **loaded
values** — but no information about which store each load actually read.
The checker reconstructs a witness: it searches for a ``source``
assignment (each load bound to a same-address store carrying the
observed value) under which the memory model's local ordering plus the
Store Atomicity closure is satisfiable.  A trace is *accepted* iff a
witness exists.

Two rule sets are supported:

* ``rules="abc"`` — the full Store Atomicity property;
* ``rules="ab"``  — rules a and b only, which is what TSOtool checks.
  The paper notes TSOtool "do[es] not formalize or check property c;
  indeed, they give an example similar to Figure 5 which they accept
  even though it violates TSO."  The TAB-TRACECHECK experiment
  reproduces that gap with a Figure-5-shaped trace.

The checker is sound and complete for straight-line programs under
store-atomic models: a trace is accepted iff the behavior enumerator can
produce an execution with those loaded values (a property the test suite
verifies exhaustively on small programs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AtomicityViolation, CycleError, ReproError
from repro.core.atomicity import close_store_atomicity
from repro.core.graph import EdgeKind, ExecutionGraph
from repro.core.node import INIT_TID, Node
from repro.isa.instructions import Fence, FenceKind, Instruction, Load, OpClass, Store
from repro.isa.operands import Const, Reg, Value
from repro.models.base import MemoryModel, OrderRequirement
from repro.models.registry import get_model


class TraceOpKind(enum.Enum):
    LOAD = "L"
    STORE = "S"
    FENCE = "F"


@dataclass(frozen=True)
class TraceOp:
    """One observed operation: a store's data, a load's observed value,
    or a fence (``addr``/``value`` ignored for fences)."""

    kind: TraceOpKind
    addr: str | None = None
    value: Value | None = None
    fence_kind: FenceKind = FenceKind.FULL

    @staticmethod
    def load(addr: str, observed: Value) -> "TraceOp":
        return TraceOp(TraceOpKind.LOAD, addr, observed)

    @staticmethod
    def store(addr: str, data: Value) -> "TraceOp":
        return TraceOp(TraceOpKind.STORE, addr, data)

    @staticmethod
    def fence(kind: FenceKind = FenceKind.FULL) -> "TraceOp":
        return TraceOp(TraceOpKind.FENCE, fence_kind=kind)

    def to_instruction(self) -> Instruction:
        if self.kind is TraceOpKind.LOAD:
            return Load(Reg("r0"), Const(self.addr))
        if self.kind is TraceOpKind.STORE:
            return Store(Const(self.addr), Const(self.value))
        return Fence(self.fence_kind)


@dataclass(frozen=True)
class Trace:
    """An observed execution: per-thread op sequences + initial memory."""

    threads: tuple[tuple[str, tuple[TraceOp, ...]], ...]
    initial: dict[str, Value] = field(default_factory=dict)

    def locations(self) -> tuple[str, ...]:
        found = set(self.initial)
        for _, ops in self.threads:
            for op in ops:
                if op.addr is not None:
                    found.add(op.addr)
        return tuple(sorted(found))


@dataclass
class TraceVerdict:
    """The checker's result."""

    accepted: bool
    rules: str
    model_name: str
    assignment: dict[tuple[str, int], tuple[int, int] | str] | None
    #: (thread, op-index) -> source identity ((tid, index) or "init")
    assignments_tried: int = 0

    def __str__(self) -> str:
        status = "ACCEPTED" if self.accepted else "REJECTED"
        return (
            f"trace {status} under {self.model_name} (rules {self.rules}, "
            f"{self.assignments_tried} assignments tried)"
        )


def _build_graph(trace: Trace, model: MemoryModel) -> tuple[ExecutionGraph, list[Node], dict]:
    """Materialize the trace as an execution graph with unresolved loads."""
    graph = ExecutionGraph()
    init_nodes: dict[str, int] = {}
    for index, location in enumerate(trace.locations()):
        node = Node(
            nid=len(graph),
            tid=INIT_TID,
            index=index,
            instruction=None,
            op_class=OpClass.STORE,
            executed=True,
            writes=True,
            addr=location,
            stored=trace.initial.get(location, 0),
            value=trace.initial.get(location, 0),
        )
        graph.add_node(node)
        init_nodes[location] = node.nid

    loads: list[Node] = []
    for tid, (_, ops) in enumerate(trace.threads):
        thread_nodes: list[Node] = []
        for index, op in enumerate(ops):
            instruction = op.to_instruction()
            node = Node(
                nid=len(graph),
                tid=tid,
                index=index,
                instruction=instruction,
                op_class=instruction.op_class,
                addr=op.addr,
            )
            if op.kind is TraceOpKind.STORE:
                node.executed = True
                node.writes = True
                node.stored = op.value
                node.value = op.value
            elif op.kind is TraceOpKind.FENCE:
                node.executed = True
            else:
                # Record the observed value now; the node stays unresolved
                # until the search binds a source carrying this value.
                node.value = op.value
            graph.add_node(node)
            for init_nid in init_nodes.values():
                graph.add_edge(init_nid, node.nid, EdgeKind.INIT)
            for prior in thread_nodes:
                requirement = model.requirement(prior.instruction, instruction)
                if requirement is OrderRequirement.ALWAYS:
                    graph.add_edge(prior.nid, node.nid, EdgeKind.PROGRAM)
                elif requirement is OrderRequirement.SAME_ADDRESS:
                    if prior.addr == node.addr:
                        graph.add_edge(prior.nid, node.nid, EdgeKind.PROGRAM)
            thread_nodes.append(node)
            if op.kind is TraceOpKind.LOAD:
                loads.append(node)
    return graph, loads, init_nodes


def check_trace(
    trace: Trace,
    model: MemoryModel | str = "weak",
    rules: str = "abc",
    max_assignments: int = 1_000_000,
) -> TraceVerdict:
    """Decide whether ``trace`` is a legal execution of ``model``.

    Searches over source assignments consistent with the observed load
    values, validating each partial assignment with the selected closure
    rules.  Raises :class:`ReproError` for bypass models (TSO-the-model
    requires the grey-edge machinery; validation houses typically check
    TSO traces against rules a/b on the TSO local order, which you can
    emulate with ``model="naive-tso"`` and ``rules="ab"``).
    """
    if isinstance(model, str):
        model = get_model(model)
    if model.store_load_bypass:
        raise ReproError(
            "trace checking supports store-atomic local orders; use "
            "'naive-tso' with rules='ab' to emulate TSOtool"
        )
    if rules not in ("ab", "abc"):
        raise ReproError(f"rules must be 'ab' or 'abc', got {rules!r}")

    graph, loads, _ = _build_graph(trace, model)
    include_rule_c = rules == "abc"
    tried = 0

    stores = [node for node in graph.nodes if node.is_visible_store]

    def candidates(load: Node, current: ExecutionGraph) -> list[Node]:
        result = []
        for store in stores:
            if store.addr != load.addr or store.stored != load.value:
                continue
            node = current.node(store.nid)
            if current.before(load.nid, node.nid):
                continue
            result.append(node)
        return result

    def search(current: ExecutionGraph, remaining: list[Node]):
        nonlocal tried
        if not remaining:
            return current
        load = remaining[0]
        for store in candidates(load, current):
            tried += 1
            if tried > max_assignments:
                raise ReproError(f"trace search exceeded {max_assignments} assignments")
            attempt = current.copy()
            attempt_load = attempt.node(load.nid)
            try:
                attempt.add_edge(store.nid, load.nid, EdgeKind.SOURCE)
                attempt_load.source = store.nid
                attempt_load.executed = True
                attempt_load.value = load.value
                close_store_atomicity(attempt, include_rule_c=include_rule_c)
            except (CycleError, AtomicityViolation):
                continue
            solution = search(attempt, remaining[1:])
            if solution is not None:
                return solution
        return None

    witness = search(graph, loads)
    assignment = None
    if witness is not None:
        assignment = {}
        for load in loads:
            resolved = witness.node(load.nid)
            source = witness.node(resolved.source)
            thread_name = trace.threads[load.tid][0]
            key = (thread_name, load.index)
            if source.tid == INIT_TID:
                assignment[key] = "init"
            else:
                assignment[key] = (source.tid, source.index)
    return TraceVerdict(
        accepted=witness is not None,
        rules=rules,
        model_name=model.name,
        assignment=assignment,
        assignments_tried=tried,
    )


def trace_from_execution(execution) -> Trace:
    """Project a completed execution onto the observable trace (what a
    validation harness would record) — used for soundness testing."""
    threads = []
    for tid, thread in enumerate(execution.program.threads):
        ops = []
        for node in execution.graph.nodes:
            if node.tid != tid:
                continue
            if node.op_class is OpClass.LOAD:
                ops.append((node.index, TraceOp.load(node.addr, node.value)))
            elif node.op_class is OpClass.STORE:
                ops.append((node.index, TraceOp.store(node.addr, node.stored)))
            elif node.op_class is OpClass.FENCE:
                ops.append((node.index, TraceOp.fence(node.instruction.kind)))
        ops.sort(key=lambda pair: pair[0])
        threads.append((thread.name, tuple(op for _, op in ops)))
    return Trace(tuple(threads), dict(execution.program.initial_memory))
