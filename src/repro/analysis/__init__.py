"""Analyses built on the enumeration framework."""

from repro.analysis.coverage import (
    CoveragePoint,
    CoverageReport,
    coherent_machine,
    measure_coverage,
    ooo_machine,
)
from repro.analysis.delays import (
    Access,
    DelayPair,
    DelayReport,
    delay_set,
    fence_delays,
    find_critical_cycles,
)
from repro.analysis.fencesynth import (
    FenceSynthesisResult,
    behavior_signature,
    synthesize_fences,
)
from repro.analysis.sites import FenceSite, candidate_sites, insert_fences
from repro.analysis.compare import (
    ChainReport,
    OutcomeSets,
    RobustnessReport,
    check_inclusion_chain,
    check_robustness,
    outcome_count_table,
    outcome_sets,
)
from repro.analysis.tracecheck import (
    Trace,
    TraceOp,
    TraceVerdict,
    check_trace,
    trace_from_execution,
)
from repro.analysis.wellsync import RaceReport, WellSyncReport, check_well_synchronized

__all__ = [
    "CoveragePoint",
    "CoverageReport",
    "coherent_machine",
    "measure_coverage",
    "ooo_machine",
    "Access",
    "DelayPair",
    "DelayReport",
    "delay_set",
    "fence_delays",
    "find_critical_cycles",
    "FenceSite",
    "FenceSynthesisResult",
    "behavior_signature",
    "candidate_sites",
    "insert_fences",
    "synthesize_fences",
    "RobustnessReport",
    "check_robustness",
    "Trace",
    "TraceOp",
    "TraceVerdict",
    "check_trace",
    "trace_from_execution",
    "ChainReport",
    "OutcomeSets",
    "check_inclusion_chain",
    "outcome_count_table",
    "outcome_sets",
    "RaceReport",
    "WellSyncReport",
    "check_well_synchronized",
]
