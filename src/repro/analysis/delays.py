"""Static delay-set analysis (Shasha & Snir, cited in paper §7).

    "Shasha and Snir take a program and discover which local orderings
    are involved in potential cycles and are therefore actually
    necessary to preserve SC behavior; the remaining edges can be
    dropped, permitting the use of a more weakly-ordered memory system."

This module implements that analysis on straight-line programs: build
the mixed graph of program-order edges (directed, within threads) and
conflict edges (both directions, between accesses of different threads
to the same location where at least one writes), enumerate the *minimal
critical cycles* (simple cycles, no immediate conflict backtracking, at
most two events per thread and per location), and report the **delay
set** — the program-order pairs appearing in some critical cycle.
Enforcing exactly those pairs (e.g. with fences) preserves SC on any
store-atomic substrate; the TAB-DELAYS experiment verifies that with the
enumerator, and cross-checks the delay pairs against the semantic
minimal-fence synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError
from repro.isa.instructions import Fence, OpClass
from repro.isa.program import Program


@dataclass(frozen=True)
class Access:
    """One static memory access."""

    thread: str
    index: int  #: static instruction index
    kind: str  #: "R" or "W"
    location: str

    def __str__(self) -> str:
        return f"{self.thread}[{self.index}]:{self.kind}{self.location}"


@dataclass(frozen=True, order=True)
class DelayPair:
    """A program-order pair that must stay ordered (a Shasha–Snir delay)."""

    thread: str
    first_index: int
    second_index: int

    def __str__(self) -> str:
        return f"{self.thread}[{self.first_index} -> {self.second_index}]"


@dataclass
class DelayReport:
    """The analysis result."""

    program_name: str
    accesses: tuple[Access, ...]
    critical_cycles: list[tuple[Access, ...]]
    delays: tuple[DelayPair, ...]

    def summary(self) -> str:
        lines = [
            f"{self.program_name}: {len(self.critical_cycles)} critical "
            f"cycle(s); delay set = "
            + (", ".join(str(d) for d in self.delays) or "(empty)")
        ]
        for cycle in self.critical_cycles[:6]:
            lines.append("  cycle: " + " -> ".join(str(a) for a in cycle))
        if len(self.critical_cycles) > 6:
            lines.append(f"  ... and {len(self.critical_cycles) - 6} more")
        return "\n".join(lines)


def _collect_accesses(program: Program) -> list[Access]:
    accesses = []
    for thread in program.threads:
        for index, instruction in enumerate(thread.code):
            if isinstance(instruction, Fence):
                continue
            if instruction.op_class.is_memory():
                addr = instruction.addr_operand()
                from repro.isa.operands import Const

                if not isinstance(addr, Const) or not isinstance(addr.value, str):
                    raise ProgramError(
                        "delay-set analysis requires static addresses"
                    )
                if instruction.op_class is OpClass.RMW:
                    kind = "W"  # conservatively a write (conflicts both ways)
                elif instruction.op_class.writes_memory():
                    kind = "W"
                else:
                    kind = "R"
                accesses.append(Access(thread.name, index, kind, addr.value))
            elif instruction.op_class is OpClass.BRANCH:
                raise ProgramError("delay-set analysis requires straight-line code")
    return accesses


def _conflicting(a: Access, b: Access) -> bool:
    return (
        a.thread != b.thread
        and a.location == b.location
        and ("W" in (a.kind, b.kind))
    )


def find_critical_cycles(program: Program) -> list[tuple[Access, ...]]:
    """All minimal critical cycles: simple cycles over po + conflict edges
    with ≤2 events per thread (po-adjacent) and ≤2 per location
    (conflict-adjacent), never immediately backtracking a conflict edge."""
    accesses = _collect_accesses(program)
    cycles: list[tuple[Access, ...]] = []
    seen: set[frozenset[Access]] = set()
    order = {access: position for position, access in enumerate(accesses)}

    def successors(current: Access, came_by_conflict_from: Access | None):
        for candidate in accesses:
            if candidate is current:
                continue
            if candidate.thread == current.thread:
                if candidate.index > current.index:
                    yield candidate, "po"
            elif _conflicting(current, candidate):
                if came_by_conflict_from is not None and candidate is came_by_conflict_from:
                    continue  # no immediate backtracking
                yield candidate, "conflict"

    def extend(path: list[Access], kinds: list[str], start: Access):
        current = path[-1]
        came_from = path[-2] if kinds and kinds[-1] == "conflict" else None
        for nxt, kind in successors(current, came_from):
            if nxt is start:
                if len(path) >= 3 and "po" in kinds + [kind] and kind == "conflict":
                    candidate = tuple(path)
                    if _is_minimal(candidate, kinds + [kind]) and frozenset(
                        candidate
                    ) not in seen:
                        seen.add(frozenset(candidate))
                        cycles.append(candidate)
                continue
            if nxt in path:
                continue
            if order[nxt] < order[start]:
                continue  # canonical start: smallest node first
            extend(path + [nxt], kinds + [kind], start)

    for start in accesses:
        extend([start], [], start)
    return cycles


def _is_minimal(cycle: tuple[Access, ...], kinds: list[str]) -> bool:
    """Shasha–Snir minimality: at most two accesses per thread, at most
    three per location (IRIW's cycle touches each location three times)."""
    per_thread: dict[str, int] = {}
    per_location: dict[str, int] = {}
    for access in cycle:
        per_thread[access.thread] = per_thread.get(access.thread, 0) + 1
        per_location[access.location] = per_location.get(access.location, 0) + 1
    if any(count > 2 for count in per_thread.values()):
        return False
    if any(count > 3 for count in per_location.values()):
        return False
    return True


def delay_set(program: Program) -> DelayReport:
    """The delay pairs of a straight-line program.  Pairs already ordered
    by an intervening full fence are dropped (already enforced)."""
    cycles = find_critical_cycles(program)
    delays: set[DelayPair] = set()
    for cycle in cycles:
        extended = cycle + (cycle[0],)
        for first, second in zip(extended, extended[1:]):
            if first.thread == second.thread and first.index < second.index:
                if _already_fenced(program, first, second):
                    continue
                delays.add(DelayPair(first.thread, first.index, second.index))
    return DelayReport(
        program_name=program.name,
        accesses=tuple(_collect_accesses(program)),
        critical_cycles=cycles,
        delays=tuple(sorted(delays)),
    )


def _already_fenced(program: Program, first: Access, second: Access) -> bool:
    from repro.isa.instructions import FenceKind

    thread = program.threads[program.thread_index(first.thread)]
    return any(
        isinstance(instruction, Fence) and instruction.kind is FenceKind.FULL
        for instruction in thread.code[first.index + 1 : second.index]
    )


def fence_delays(program: Program, report: DelayReport | None = None) -> Program:
    """A copy of ``program`` with a full fence inside every delay pair —
    the Shasha–Snir prescription for running SC code on a weak machine."""
    from repro.analysis.fencesynth import FenceSite, insert_fences

    report = report or delay_set(program)
    sites = {
        FenceSite(delay.thread, delay.first_index + 1) for delay in report.delays
    }
    return insert_fences(program, tuple(sorted(sites)))
