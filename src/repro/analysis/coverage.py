"""Schedule-coverage measurement for single-run machines.

The axiomatic enumerator produces a model's *complete* behavior set; the
single-schedule machines (the coherent multiprocessor, the out-of-order
core) produce one behavior per seed.  Coverage answers "how many random
schedules until the machine has exhibited its whole model?" — the
practical question behind litmus-style hardware testing, where a
forbidden outcome that never shows up is indistinguishable from one that
is merely rare.

``measure_coverage`` runs a machine over increasing seed counts and
records the growth curve of distinct outcomes against the model's
ground-truth set (also flagging any outcome OUTSIDE the model, which
would be a conformance bug).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.enumerate import enumerate_behaviors
from repro.isa.program import Program
from repro.models.base import MemoryModel
from repro.models.registry import get_model


@dataclass(frozen=True)
class CoveragePoint:
    """Distinct outcomes seen after ``seeds`` schedules."""

    seeds: int
    distinct: int


@dataclass
class CoverageReport:
    """The coverage curve of one machine against one model."""

    program_name: str
    model_name: str
    total_outcomes: int  #: size of the model's full behavior set
    curve: list[CoveragePoint]
    violations: int  #: runs whose outcome fell OUTSIDE the model
    seeds_to_full: int | None  #: first seed count reaching every outcome

    @property
    def complete(self) -> bool:
        return self.seeds_to_full is not None

    def summary(self) -> str:
        tail = self.curve[-1] if self.curve else CoveragePoint(0, 0)
        status = (
            f"full coverage at {self.seeds_to_full} schedules"
            if self.complete
            else f"{tail.distinct}/{self.total_outcomes} outcomes after {tail.seeds}"
        )
        violation_note = f", {self.violations} VIOLATIONS" if self.violations else ""
        return f"{self.program_name} vs {self.model_name}: {status}{violation_note}"


def measure_coverage(
    program: Program,
    machine: Callable[[Program, int], frozenset],
    model: MemoryModel | str,
    max_seeds: int = 400,
    checkpoint_every: int = 25,
) -> CoverageReport:
    """Run ``machine(program, seed)`` (returning an outcome frozenset) for
    seeds 0..max_seeds-1 and chart coverage of the model's behavior set.

    Stops early once every outcome has been seen.
    """
    if isinstance(model, str):
        model = get_model(model)
    truth = enumerate_behaviors(program, model).register_outcomes()
    seen: set[frozenset] = set()
    violations = 0
    curve: list[CoveragePoint] = []
    seeds_to_full: int | None = None

    for seed in range(max_seeds):
        outcome = machine(program, seed)
        if outcome in truth:
            seen.add(outcome)
        else:
            violations += 1
        if seeds_to_full is None and seen == truth:
            seeds_to_full = seed + 1
        if (seed + 1) % checkpoint_every == 0 or seed + 1 == max_seeds:
            curve.append(CoveragePoint(seed + 1, len(seen)))
        if seeds_to_full is not None:
            if not curve or curve[-1].seeds != seed + 1:
                curve.append(CoveragePoint(seed + 1, len(seen)))
            break

    return CoverageReport(
        program_name=program.name,
        model_name=model.name,
        total_outcomes=len(truth),
        curve=curve,
        violations=violations,
        seeds_to_full=seeds_to_full,
    )


def ooo_machine(program: Program, seed: int) -> frozenset:
    """Adapter: the out-of-order core as a coverage subject (model: tso)."""
    from repro.ooo import run_ooo

    return run_ooo(program, seed=seed).registers


def coherent_machine(program: Program, seed: int) -> frozenset:
    """Adapter: the MSI multiprocessor as a coverage subject (model: sc)."""
    from repro.coherence import run_coherent

    return run_coherent(program, seed=seed).registers
