"""Model-comparison analysis: behavior-set inclusion between models.

A model ``A`` is *no stronger than* ``B`` on a program when every final
register outcome of the program under ``A`` is also an outcome under
``B``.  The paper's models form the chain SC ⊆ TSO ⊆ PSO ⊆ WEAK ⊆
WEAK-SPEC on programs in their common fragment; this module checks such
chains empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.enumerate import EnumerationLimits, enumerate_behaviors
from repro.isa.program import Program
from repro.models.base import MemoryModel
from repro.models.registry import get_model


@dataclass(frozen=True)
class OutcomeSets:
    """Register-outcome sets per model for one program.

    ``complete`` records, per model, whether the enumeration exhausted
    the behavior set; comparisons against a partial outcome set are only
    lower bounds (see :meth:`conclusive`).
    """

    program_name: str
    outcomes: dict[str, frozenset]
    complete: dict[str, bool] = field(default_factory=dict)

    def count(self, model_name: str) -> int:
        return len(self.outcomes[model_name])

    def is_complete(self, model_name: str) -> bool:
        return self.complete.get(model_name, True)

    def included(self, weaker: str, stronger: str) -> bool:
        """True iff outcomes(weaker) ⊆ outcomes(stronger).

        Note the naming: the *stronger ordering* model (e.g. SC) has fewer
        behaviors; ``included("sc", "tso")`` asks whether every SC outcome
        is also a TSO outcome.
        """
        return self.outcomes[weaker] <= self.outcomes[stronger]

    def conclusive(self, weaker: str, stronger: str) -> bool:
        """Whether :meth:`included` is a definitive verdict.

        A positive inclusion needs the *weaker* (left) side complete — a
        partial left set may be missing the violating outcome; a negative
        inclusion needs the *stronger* (right) side complete — a partial
        right set may be missing the matching outcome."""
        if self.included(weaker, stronger):
            return self.is_complete(weaker)
        return self.is_complete(stronger)

    def only_in(self, model_a: str, model_b: str) -> frozenset:
        """Outcomes observable under ``model_a`` but not ``model_b``."""
        return self.outcomes[model_a] - self.outcomes[model_b]


def outcome_sets(
    program: Program,
    models: tuple[str | MemoryModel, ...],
    limits: EnumerationLimits | None = None,
) -> OutcomeSets:
    """Enumerate the program under each model and collect outcome sets."""
    collected: dict[str, frozenset] = {}
    complete: dict[str, bool] = {}
    for model in models:
        resolved = get_model(model) if isinstance(model, str) else model
        result = enumerate_behaviors(program, resolved, limits)
        collected[resolved.name] = result.register_outcomes()
        complete[resolved.name] = result.complete
    return OutcomeSets(program.name, collected, complete)


@dataclass(frozen=True)
class ChainReport:
    """Result of checking an inclusion chain on a set of programs.

    ``caveats`` lists apparent violations that rest on a *partial*
    outcome set: the missing side may simply not have been enumerated
    yet, so they are reported but do not refute the chain."""

    chain: tuple[str, ...]
    per_program: dict[str, OutcomeSets]
    violations: tuple[str, ...]
    caveats: tuple[str, ...] = ()

    @property
    def holds(self) -> bool:
        return not self.violations


def check_inclusion_chain(
    programs: list[Program],
    chain: tuple[str, ...],
    limits: EnumerationLimits | None = None,
) -> ChainReport:
    """Check that each model in ``chain`` admits a subset of the next
    model's outcomes, on every program."""
    per_program: dict[str, OutcomeSets] = {}
    violations: list[str] = []
    caveats: list[str] = []
    for program in programs:
        sets = outcome_sets(program, chain, limits)
        per_program[program.name] = sets
        for stronger, weaker in zip(chain, chain[1:]):
            if not sets.included(stronger, weaker):
                extra = sets.only_in(stronger, weaker)
                message = (
                    f"{program.name}: {stronger} has {len(extra)} outcome(s) "
                    f"not in {weaker}"
                )
                if sets.conclusive(stronger, weaker):
                    violations.append(message)
                else:
                    caveats.append(f"{message} (partial enumeration — inconclusive)")
    return ChainReport(chain, per_program, tuple(violations), tuple(caveats))


@dataclass(frozen=True)
class RobustnessReport:
    """Is a program's behavior under a weak model indistinguishable from
    SC?  (The practical question behind §8's programming disciplines: a
    robust program may run on the weak machine unchanged.)"""

    program_name: str
    model_name: str
    robust: bool
    extra_outcomes: frozenset  #: outcomes possible under the model but not SC
    complete: bool = True  #: False when either enumeration was budget-limited

    def summary(self) -> str:
        caveat = "" if self.complete else " (partial enumeration — lower bound)"
        if self.robust:
            return (
                f"{self.program_name} is robust against {self.model_name}: "
                f"all behaviors are SC behaviors{caveat}"
            )
        samples = []
        for outcome in sorted(self.extra_outcomes, key=repr)[:3]:
            samples.append(
                "{"
                + ", ".join(
                    f"{thread}:{register}={value}"
                    for (thread, register), value in sorted(outcome, key=repr)
                )
                + "}"
            )
        return (
            f"{self.program_name} is NOT robust against {self.model_name}: "
            f"{len(self.extra_outcomes)} non-SC outcome(s), e.g. {'; '.join(samples)}"
            f"{caveat}"
        )


def check_robustness(
    program: Program,
    model: str | MemoryModel = "weak",
    limits: EnumerationLimits | None = None,
) -> RobustnessReport:
    """Decide SC-robustness by exhaustive enumeration under both models.

    When either enumeration stops at a budget the verdict is a lower
    bound (``complete=False``): extra outcomes found are real, but a
    "robust" verdict may miss behaviors beyond the budget."""
    resolved = get_model(model) if isinstance(model, str) else model
    sc_result = enumerate_behaviors(program, get_model("sc"), limits)
    weak_result = enumerate_behaviors(program, resolved, limits)
    extra = weak_result.register_outcomes() - sc_result.register_outcomes()
    return RobustnessReport(
        program_name=program.name,
        model_name=resolved.name,
        robust=not extra,
        extra_outcomes=frozenset(extra),
        complete=sc_result.complete and weak_result.complete,
    )


def outcome_count_table(
    programs: list[Program],
    models: tuple[str, ...],
    limits: EnumerationLimits | None = None,
) -> str:
    """Render a program × model table of outcome counts."""
    rows = []
    for program in programs:
        sets = outcome_sets(program, models, limits)
        rows.append((program.name, [sets.count(m) for m in models]))
    name_width = max(len("program"), *(len(name) for name, _ in rows)) + 2
    column_width = max(8, *(len(m) for m in models)) + 2
    header = "program".ljust(name_width) + "".join(m.ljust(column_width) for m in models)
    lines = [header, "-" * len(header)]
    for name, counts in rows:
        lines.append(
            name.ljust(name_width)
            + "".join(str(c).ljust(column_width) for c in counts)
        )
    return "\n".join(lines)
