"""White-box tests for the operational machines' internals."""

import pytest

from repro.errors import EnumerationError
from repro.isa.dsl import ProgramBuilder
from repro.operational.dataflow import run_dataflow
from repro.operational.sc import _initial_memory, _read, _write, run_sc
from repro.operational.storebuffer import _drain_choices, _forward, run_store_buffer



class TestMemorySnapshots:
    def test_initial_memory_sorted(self, sb_program):
        memory = _initial_memory(sb_program)
        assert memory == (("x", 0), ("y", 0))

    def test_read_write_round_trip(self, sb_program):
        memory = _initial_memory(sb_program)
        updated = _write(memory, "x", 7)
        assert _read(updated, "x") == 7
        assert _read(updated, "y") == 0
        assert _read(memory, "x") == 0  # persistence

    def test_read_unknown_location(self, sb_program):
        with pytest.raises(EnumerationError):
            _read(_initial_memory(sb_program), "zzz")


class TestBufferInternals:
    def test_forward_prefers_newest(self):
        buffer = (("x", 1), ("y", 5), ("x", 2))
        assert _forward(buffer, "x") == (2,)
        assert _forward(buffer, "y") == (5,)
        assert _forward(buffer, "z") is None

    def test_fifo_drain_choices(self):
        buffer = (("x", 1), ("y", 5), ("x", 2))
        assert _drain_choices(buffer, fifo=True) == [0]

    def test_per_address_drain_choices(self):
        buffer = (("x", 1), ("y", 5), ("x", 2))
        # first entry per address: x at 0, y at 1 — never the second x
        assert _drain_choices(buffer, fifo=False) == [0, 1]

    def test_empty_buffer(self):
        assert _drain_choices((), fifo=True) == []
        assert _drain_choices((), fifo=False) == []


class TestStateLimits:
    def test_sc_state_limit(self, sb_program):
        with pytest.raises(EnumerationError):
            run_sc(sb_program, max_states=1)

    def test_buffer_state_limit(self, sb_program):
        with pytest.raises(EnumerationError):
            run_store_buffer(sb_program, fifo=True, max_states=1)

    def test_dataflow_state_limit(self, sb_program):
        with pytest.raises(EnumerationError):
            run_dataflow(sb_program, "weak", max_states=1)


class TestDataflowStateCounts:
    def test_explored_state_accounting(self, sb_program):
        result = run_dataflow(sb_program, "weak")
        assert result.states_explored > result.terminal_states > 0

    def test_terminal_states_cover_outcomes(self):
        builder = ProgramBuilder("tiny")
        builder.thread("T").store("x", 1)
        result = run_dataflow(builder.build(), "weak")
        assert result.terminal_states == 1
        assert len(result.outcomes) == 1

    def test_sc_table_on_dataflow_matches_interleaver_states(self, sb_program):
        """Not just outcomes: under SC, both machines consider the full
        interleaving space (state counts need not match, but outcomes and
        terminal reachability must)."""
        dataflow = run_dataflow(sb_program, "sc")
        interleaved = run_sc(sb_program)
        assert dataflow.outcomes == interleaved.outcomes
        assert dataflow.terminal_states >= 1
        assert interleaved.terminal_states >= 1
