"""Integration tests: the litmus library, runner, and matrix."""

import pytest

from repro.errors import ConditionError, ReproError
from repro.litmus.library import all_tests, get_test
from repro.litmus.library import test_names as litmus_test_names
from repro.litmus.runner import format_matrix, run_litmus, run_matrix
from repro.litmus.test import litmus_from_source

MODELS = ("sc", "tso", "pso", "weak", "weak-corr")


class TestLibraryShape:
    def test_has_classic_tests(self):
        names = litmus_test_names()
        for expected in ("SB", "MP", "LB", "IRIW", "WRC", "2+2W", "CoRR", "dekker"):
            assert expected in names

    def test_every_test_has_expectations_for_all_models(self):
        for test in all_tests():
            for model in MODELS:
                assert test.expectation(model) is not None, (test.name, model)

    def test_get_test_unknown(self):
        with pytest.raises(ReproError):
            get_test("NOPE")

    def test_descriptions_present(self):
        assert all(test.description for test in all_tests())


class TestRunner:
    def test_sb_verdicts(self):
        test = get_test("SB")
        sc_verdict = run_litmus(test, "sc")
        weak_verdict = run_litmus(test, "weak")
        assert not sc_verdict.holds and sc_verdict.matches_expectation
        assert weak_verdict.holds and weak_verdict.matches_expectation
        assert weak_verdict.executions == 4
        assert weak_verdict.satisfied_pairs == 1

    def test_forall_condition(self):
        verdict = run_litmus(get_test("INC+INC"), "weak")
        assert verdict.holds
        assert verdict.satisfied_pairs == verdict.total_pairs

    def test_memory_condition(self):
        verdict = run_litmus(get_test("2+2W"), "pso")
        assert verdict.holds  # [x]=1 /\ [y]=1 realizable under PSO

    def test_summary_text(self):
        verdict = run_litmus(get_test("SB"), "sc")
        assert "SB" in verdict.summary() and "ok" in verdict.summary()


@pytest.mark.parametrize("model_name", MODELS)
def test_full_matrix_matches_expectations(model_name):
    """Every litmus verdict under every model matches the literature."""
    for test in all_tests():
        verdict = run_litmus(test, model_name)
        assert verdict.matches_expectation, (
            f"{test.name} under {model_name}: expected {verdict.expected}, "
            f"got {verdict.holds} ({verdict.satisfied_pairs}/{verdict.total_pairs})"
        )


class TestMatrixFormatting:
    def test_format_matrix(self):
        verdicts = run_matrix([get_test("SB"), get_test("MP")], ("sc", "weak"))
        table = format_matrix(verdicts)
        assert "SB" in table and "MP" in table
        assert "sc" in table and "weak" in table
        assert "!" not in table  # no expectation mismatches


class TestLitmusFromSource:
    def test_condition_required(self):
        with pytest.raises(ConditionError):
            litmus_from_source("test T\nthread P0\n  S x, 1\n")

    def test_full_round_trip(self):
        test = litmus_from_source(
            """
            test tiny
            thread P0
                S x, 1
                r1 = L x
            exists (P0:r1=1)
            """,
            expected={"sc": True},
        )
        verdict = run_litmus(test, "sc")
        assert verdict.holds and verdict.matches_expectation
