"""Tests for the hardened experiment batch layer: per-experiment
isolation, deadlines, transient retry, and ERROR quarantine."""

import os
import time
import types
import warnings

import pytest

from repro.errors import ReproError, StuckBehaviorWarning
from repro.experiments.base import (
    ExperimentOutcome,
    ExperimentResult,
    QuarantinedItem,
    is_transient,
    parallel_map,
    run_isolated,
)
from repro.experiments.report import FullReport, to_markdown


def _square(n):
    """Module-level so it pickles into parallel_map worker processes."""
    return n * n


def _square_or_die(n):
    """Kills its worker process outright for the poisoned item — the
    same observable as a segfault or the OOM killer."""
    if n < 0:
        os._exit(42)
    return n * n


def _module(name, run):
    module = types.SimpleNamespace(run=run)
    module.__name__ = name
    return module


def _passing_result():
    result = ExperimentResult("OK1", "a passing experiment")
    result.claim("trivial", 1, 1)
    return result


class TestRunIsolated:
    def test_passing_experiment(self):
        outcome = run_isolated(_module("ok", _passing_result))
        assert outcome.status == "PASS" and outcome.passed
        assert outcome.result is not None
        assert outcome.attempts == 1

    def test_failing_claims_become_fail(self):
        def run():
            result = ExperimentResult("BAD", "claims disagree")
            result.claim("wrong", 1, 2)
            return result

        outcome = run_isolated(_module("bad", run))
        assert outcome.status == "FAIL" and not outcome.passed
        assert outcome.result is not None

    def test_crash_is_quarantined_with_traceback(self):
        def run():
            raise ValueError("experiment exploded")

        outcome = run_isolated(_module("boom", run))
        assert outcome.status == "ERROR"
        assert outcome.result is None
        assert "experiment exploded" in outcome.error
        assert "Traceback" in outcome.error
        assert "ERROR" in outcome.summary()

    def test_deadline_quarantines_hang(self):
        def run():
            time.sleep(5)

        start = time.monotonic()
        outcome = run_isolated(_module("hang", run), deadline_seconds=0.2)
        assert time.monotonic() - start < 2
        assert outcome.status == "ERROR"
        assert "deadline" in outcome.error

    def test_transient_failure_retried_once(self):
        calls = []

        def run():
            calls.append(1)
            if len(calls) == 1:
                raise MemoryError("transient pressure")
            return _passing_result()

        outcome = run_isolated(_module("flaky", run))
        assert outcome.status == "PASS"
        assert outcome.attempts == 2
        assert len(calls) == 2

    def test_persistent_failure_not_retried_forever(self):
        calls = []

        def run():
            calls.append(1)
            raise MemoryError("always failing")

        outcome = run_isolated(_module("dead", run), retries=1)
        assert outcome.status == "ERROR"
        assert len(calls) == 2  # one retry, then quarantine

    def test_non_transient_failure_not_retried(self):
        calls = []

        def run():
            calls.append(1)
            raise ValueError("deterministic bug")

        outcome = run_isolated(_module("det", run))
        assert outcome.status == "ERROR"
        assert len(calls) == 1

    def test_stuck_warning_becomes_fail_note(self):
        def run():
            warnings.warn(StuckBehaviorWarning("2 behavior(s) got stuck"))
            return _passing_result()

        outcome = run_isolated(_module("stuckexp", run))
        assert outcome.status == "FAIL"  # an engine bug demotes the pass
        assert any("stuck" in note for note in outcome.notes)
        assert "FAIL-NOTE" in outcome.summary()


class TestTransientClassification:
    def test_classes(self):
        assert is_transient(MemoryError())
        assert is_transient(OSError())
        assert not is_transient(ValueError())

    def test_flagged_exceptions(self):
        exc = ValueError("flagged")
        exc.transient = True
        assert is_transient(exc)


class TestParallelMapHardening:
    def test_serial_and_parallel_agree(self):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=1) == [n * n for n in items]
        assert parallel_map(_square, items, jobs=2) == [n * n for n in items]

    def test_worker_crash_spares_surviving_items(self):
        """One poisoned item kills its worker; with quarantine=True every
        other result survives and the poisoned slot says what happened."""
        items = [1, 2, -1, 3, 4, 5]
        results = parallel_map(_square_or_die, items, jobs=2, quarantine=True)
        bad = results[2]
        assert isinstance(bad, QuarantinedItem)
        assert bad.index == 2 and bad.item == -1
        assert "crashed" in bad.error
        assert "QUARANTINED item 2" in str(bad)
        for index, item in enumerate(items):
            if index != 2:
                assert results[index] == item * item

    def test_worker_crash_default_raises_naming_the_item(self):
        with pytest.raises(ReproError) as info:
            parallel_map(_square_or_die, [1, -1, 2], jobs=2)
        message = str(info.value)
        assert "item 1" in message and "-1" in message
        assert "quarantine=True" in message  # tells the user the way out

    def test_ordinary_exceptions_propagate_unchanged(self):
        def boom(n):
            raise ValueError(f"bad item {n}")

        with pytest.raises(ValueError, match="bad item 0"):
            parallel_map(boom, [0, 1], jobs=1)
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0, 2], jobs=2)


def _reciprocal(n):
    return 1 / n


class TestFullReport:
    def test_accepts_plain_results_for_compat(self):
        report = FullReport([_passing_result()])
        assert report.passed
        assert len(report.results) == 1
        assert "ALL EXPERIMENTS PASS" in to_markdown(report)

    def test_error_rows_render_in_markdown(self):
        def run():
            raise RuntimeError("kaboom")

        error_outcome = run_isolated(_module("boom", run))
        report = FullReport([ExperimentOutcome.from_result(_passing_result()), error_outcome])
        assert not report.passed
        assert len(report.errors) == 1
        markdown = to_markdown(report)
        assert "FAILURES PRESENT" in markdown
        assert "[ERROR]" in markdown
        assert "kaboom" in markdown
        assert "quarantined" in markdown
        # the passing experiment still rendered normally
        assert "## OK1 — a passing experiment [PASS]" in markdown

    def test_batch_continues_past_error(self):
        """One pathological experiment must not abort the batch."""
        modules = [
            _module("a", _passing_result),
            _module("b", lambda: (_ for _ in ()).throw(RuntimeError("die"))),
            _module("c", _passing_result),
        ]
        outcomes = [run_isolated(m) for m in modules]
        assert [o.status for o in outcomes] == ["PASS", "ERROR", "PASS"]
