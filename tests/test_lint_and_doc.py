"""Tests for the program linter and the model explainer."""

import pytest

from repro.cli import main
from repro.isa.dsl import ProgramBuilder
from repro.isa.lint import LintLevel, lint_program
from repro.litmus.library import all_tests, get_test
from repro.models.doc import model_card


def _messages(findings):
    return [finding.message for finding in findings]


class TestLinter:
    def test_clean_program(self):
        assert lint_program(get_test("SB").program) == []

    def test_read_before_write(self):
        builder = ProgramBuilder("rbw")
        builder.thread("T").store("x", "r9")
        findings = lint_program(builder.build())
        assert any("read before any write" in message for message in _messages(findings))
        assert findings[0].level is LintLevel.WARNING

    def test_double_write_info(self):
        builder = ProgramBuilder("dw")
        thread = builder.thread("T")
        thread.load("r1", "x")
        thread.load("r1", "y")
        findings = lint_program(builder.build())
        assert any("written 2 times" in message for message in _messages(findings))

    def test_dead_label(self):
        builder = ProgramBuilder("dead")
        thread = builder.thread("T")
        thread.label("unused")
        thread.store("x", 1)
        findings = lint_program(builder.build())
        assert any("never branched to" in message for message in _messages(findings))

    def test_memoryless_thread(self):
        builder = ProgramBuilder("nomem")
        builder.thread("T").mov("r1", 5)
        findings = lint_program(builder.build())
        assert any("no memory operations" in message for message in _messages(findings))

    def test_trailing_fence(self):
        builder = ProgramBuilder("tf")
        thread = builder.thread("T")
        thread.store("x", 1)
        thread.fence()
        findings = lint_program(builder.build())
        assert any("trailing fence" in message for message in _messages(findings))

    def test_write_only_location(self):
        builder = ProgramBuilder("wo")
        builder.thread("T").store("x", 1)
        findings = lint_program(builder.build())
        assert any("written but never read" in message for message in _messages(findings))

    def test_unused_initial_value(self):
        builder = ProgramBuilder("unused-init")
        builder.init("z", 9)
        builder.thread("T").load("r1", "x")
        findings = lint_program(builder.build())
        assert any("never used" in message for message in _messages(findings))

    def test_library_tests_have_no_warnings(self):
        """Every library test should be warning-clean (infos are fine)."""
        for test in all_tests():
            warnings = [
                finding
                for finding in lint_program(test.program)
                if finding.level is LintLevel.WARNING
            ]
            assert warnings == [], (test.name, [str(w) for w in warnings])

    def test_cli_lint(self, capsys):
        assert main(["lint", "SB"]) == 0
        assert "no findings" in capsys.readouterr().out


class TestModelCards:
    def test_tso_signature(self):
        card = model_card("tso")
        signature = dict(card.signature)
        assert signature == {
            "SB": True,
            "MP": False,
            "LB": False,
            "CoRR": False,
            "2+2W": False,
            "IRIW": False,
        }
        assert card.store_load_bypass

    def test_weak_signature(self):
        signature = dict(model_card("weak").signature)
        assert all(signature.values())  # weak exhibits every relaxation

    def test_sc_signature(self):
        signature = dict(model_card("sc").signature)
        assert not any(signature.values())

    def test_render_mentions_table_and_flags(self):
        text = model_card("weak-spec").render()
        assert "x != y" in text
        assert "speculation" in text

    def test_cli_explain(self, capsys):
        assert main(["models", "--explain", "pso"]) == 0
        out = capsys.readouterr().out
        assert "litmus signature" in out
        assert "2+2W   Yes" in out
