"""Tests for the program linter and the model explainer."""


from repro.cli import main
from repro.isa.dsl import ProgramBuilder
from repro.isa.lint import LintLevel, lint_program
from repro.litmus.library import all_tests, get_test
from repro.models.doc import model_card


def _messages(findings):
    return [finding.message for finding in findings]


class TestLinter:
    def test_clean_program(self):
        assert lint_program(get_test("SB").program) == []

    def test_read_before_write(self):
        builder = ProgramBuilder("rbw")
        builder.thread("T").store("x", "r9")
        findings = lint_program(builder.build())
        assert any("read before any write" in message for message in _messages(findings))
        assert findings[0].level is LintLevel.WARNING

    def test_double_write_info(self):
        builder = ProgramBuilder("dw")
        thread = builder.thread("T")
        thread.load("r1", "x")
        thread.load("r1", "y")
        findings = lint_program(builder.build())
        assert any("written 2 times" in message for message in _messages(findings))

    def test_dead_label(self):
        builder = ProgramBuilder("dead")
        thread = builder.thread("T")
        thread.label("unused")
        thread.store("x", 1)
        findings = lint_program(builder.build())
        assert any("never branched to" in message for message in _messages(findings))

    def test_memoryless_thread(self):
        builder = ProgramBuilder("nomem")
        builder.thread("T").mov("r1", 5)
        findings = lint_program(builder.build())
        assert any("no memory operations" in message for message in _messages(findings))

    def test_trailing_fence(self):
        builder = ProgramBuilder("tf")
        thread = builder.thread("T")
        thread.store("x", 1)
        thread.fence()
        findings = lint_program(builder.build())
        assert any("trailing fence" in message for message in _messages(findings))

    def test_write_only_location(self):
        builder = ProgramBuilder("wo")
        builder.thread("T").store("x", 1)
        findings = lint_program(builder.build())
        assert any("written but never read" in message for message in _messages(findings))

    def test_unused_initial_value(self):
        builder = ProgramBuilder("unused-init")
        builder.init("z", 9)
        builder.thread("T").load("r1", "x")
        findings = lint_program(builder.build())
        assert any("never used" in message for message in _messages(findings))

    def test_address_register_before_write_is_error(self):
        builder = ProgramBuilder("badaddr")
        builder.thread("T").load("r1", "r9")
        findings = lint_program(builder.build())
        errors = [f for f in findings if f.level is LintLevel.ERROR]
        assert len(errors) == 1
        assert "memory address" in errors[0].message
        # Not double-reported as a plain read-before-write warning.
        assert not any(
            "read before any write" in f.message
            for f in findings
            if f.level is LintLevel.WARNING
        )

    def test_dynamic_addressing_note(self):
        builder = ProgramBuilder("dyn")
        thread = builder.thread("T")
        thread.mov("r9", "x")
        thread.load("r1", "r9")
        messages = _messages(lint_program(builder.build()))
        assert any("location-level checks suppressed" in m for m in messages)

    def test_library_tests_have_no_warnings(self):
        """Every library test should be warning-clean (infos are fine)."""
        for test in all_tests():
            warnings = [
                finding
                for finding in lint_program(test.program)
                if finding.level is not LintLevel.INFO
            ]
            assert warnings == [], (test.name, [str(w) for w in warnings])

    def test_cli_lint(self, capsys):
        assert main(["lint", "SB"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_lint_all(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "SB" in out and "IRIW" in out

    def test_cli_lint_without_test_errors(self, capsys):
        assert main(["lint"]) == 2

    def test_cli_lint_strict_fails_on_warnings(self, tmp_path, capsys):
        source = tmp_path / "warn.litmus"
        source.write_text(
            "test warnonly\nthread T\n    S x, r7\nexists (T:r7=0)\n",
            encoding="utf-8",
        )
        # r7 is read before any write: a WARNING — clean exit normally,
        # nonzero under --strict.
        assert main(["lint", str(source)]) == 0
        assert main(["lint", str(source), "--strict"]) == 1
        capsys.readouterr()

    def test_cli_lint_error_exits_nonzero(self, tmp_path, capsys):
        source = tmp_path / "bad.litmus"
        source.write_text(
            "test badaddr\nthread T\n    r1 = L r9\nexists (T:r1=0)\n",
            encoding="utf-8",
        )
        # r9 as an address before any write: an ERROR, nonzero even
        # without --strict.
        assert main(["lint", str(source)]) == 1
        capsys.readouterr()

    def test_cli_run_auto_lints(self, tmp_path, capsys):
        source = tmp_path / "bad.litmus"
        source.write_text(
            "test badaddr\nthread T\n    r1 = L r9\nexists (T:r1=0)\n",
            encoding="utf-8",
        )
        assert main(["run", str(source), "-m", "sc"]) == 2
        assert "refusing to run" in capsys.readouterr().err
        # --no-lint skips the gate; the program then fails at runtime
        # (address 0 is not a location) — exactly what the lint predicted.
        main(["run", str(source), "-m", "sc", "--no-lint"])
        assert "refusing to run" not in capsys.readouterr().err

    def test_cli_enumerate_auto_lints(self, tmp_path, capsys):
        source = tmp_path / "bad.litmus"
        source.write_text(
            "test badaddr\nthread T\n    r1 = L r9\nexists (T:r1=0)\n",
            encoding="utf-8",
        )
        assert main(["enumerate", str(source), "-m", "sc"]) == 2
        assert "lint errors" in capsys.readouterr().err


class TestModelCards:
    def test_tso_signature(self):
        card = model_card("tso")
        signature = dict(card.signature)
        assert signature == {
            "SB": True,
            "MP": False,
            "LB": False,
            "CoRR": False,
            "2+2W": False,
            "IRIW": False,
        }
        assert card.store_load_bypass

    def test_weak_signature(self):
        signature = dict(model_card("weak").signature)
        assert all(signature.values())  # weak exhibits every relaxation

    def test_sc_signature(self):
        signature = dict(model_card("sc").signature)
        assert not any(signature.values())

    def test_render_mentions_table_and_flags(self):
        text = model_card("weak-spec").render()
        assert "x != y" in text
        assert "speculation" in text

    def test_cli_explain(self, capsys):
        assert main(["models", "--explain", "pso"]) == 0
        out = capsys.readouterr().out
        assert "litmus signature" in out
        assert "2+2W   Yes" in out
