"""Tests for serializability: witness search and the declarative ⊑.

The key theorem exercised here: **a memory model with Store Atomicity is
serializable** — every execution the enumerator produces has a witness
total order — and the closure's ⊑ agrees with "before in every
serialization" on the paper's figure examples.
"""

import pytest

from repro.errors import SerializationError
from repro.core.enumerate import enumerate_behaviors
from repro.core.serialization import (
    all_serializations,
    always_before_pairs,
    find_serialization,
    is_serializable,
    require_serializable,
)
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model



def _check_witness(execution, witness):
    """Replay the witness and assert all three serialization conditions."""
    graph = execution.graph
    position = {nid: i for i, nid in enumerate(witness)}
    memory = {}
    for nid in witness:
        node = graph.node(nid)
        for ancestor in graph.ancestors(nid):
            if graph.node(ancestor).is_memory:
                assert position[ancestor] < position[nid], "condition 1 violated"
        if node.reads_memory:
            assert memory[node.addr] == node.source, "conditions 2/3 violated"
        if node.is_visible_store:
            memory[node.addr] = node.nid


class TestWitnessSearch:
    @pytest.mark.parametrize("model_name", ["sc", "weak", "pso", "weak-corr"])
    def test_every_enumerated_execution_serializable(self, sb_program, model_name):
        result = enumerate_behaviors(sb_program, get_model(model_name))
        assert result.executions
        for execution in result.executions:
            witness = find_serialization(execution)
            assert witness is not None
            _check_witness(execution, witness)

    def test_mp_executions_serializable(self, mp_program, weak):
        for execution in enumerate_behaviors(mp_program, weak).executions:
            require_serializable(execution)

    def test_tso_bypass_execution_not_serializable(self):
        """The Figure 10 execution violates memory atomicity: no witness
        exists unless bypassed loads are exempted."""
        from repro.experiments.fig1011 import PAPER_OUTCOME, build_program

        result = enumerate_behaviors(build_program(), get_model("tso"))
        pictured = [
            e for e in result.executions
            if frozenset(e.final_registers().items()) == PAPER_OUTCOME
        ]
        assert pictured
        for execution in pictured:
            assert not is_serializable(execution)
            assert is_serializable(execution, forwarded_ok=True)

    def test_require_serializable_raises(self):
        from repro.experiments.fig1011 import PAPER_OUTCOME, build_program

        result = enumerate_behaviors(build_program(), get_model("tso"))
        pictured = [
            e for e in result.executions
            if frozenset(e.final_registers().items()) == PAPER_OUTCOME
        ]
        with pytest.raises(SerializationError):
            require_serializable(pictured[0])


class TestAllSerializations:
    def test_single_thread_has_one_order(self):
        builder = ProgramBuilder("line")
        t = builder.thread("T")
        t.store("x", 1)
        t.load("r1", "x")
        (execution,) = enumerate_behaviors(builder.build(), get_model("sc")).executions
        orders = all_serializations(execution)
        assert len(orders) == 1

    def test_independent_stores_commute(self):
        builder = ProgramBuilder("two")
        builder.thread("A").store("x", 1)
        builder.thread("B").store("y", 1)
        (execution,) = enumerate_behaviors(builder.build(), get_model("sc")).executions
        orders = all_serializations(execution)
        # the two thread stores commute; init stores also commute with each
        # other but stay before everything.
        assert len(orders) >= 2

    def test_declarative_before_subsumes_closure(self, sb_program, weak):
        """Soundness: every ⊑ edge holds in every serialization."""
        for execution in enumerate_behaviors(sb_program, weak).executions:
            declarative = always_before_pairs(execution)
            memory_nids = {
                node.nid for node in execution.graph.nodes if node.is_memory
            }
            for u in memory_nids:
                for v in memory_nids:
                    if u != v and execution.graph.before(u, v):
                        assert (u, v) in declarative

    def test_closure_complete_on_figure3(self):
        """Completeness on the paper's Figure 3: pairs ordered in every
        serialization are exactly the ⊑ pairs."""
        from repro.experiments.fig3 import build_program

        result = enumerate_behaviors(build_program(), get_model("weak"))
        for execution in result.executions[:4]:
            declarative = always_before_pairs(execution)
            computed = {
                (u, v)
                for (u, v) in declarative
                if execution.graph.before(u, v)
            }
            assert computed == declarative
