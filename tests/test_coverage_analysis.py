"""Tests for schedule-coverage measurement."""


from repro.analysis.coverage import (
    coherent_machine,
    measure_coverage,
    ooo_machine,
)
from repro.litmus.library import get_test


class TestCoverage:
    def test_ooo_covers_tso_on_sb(self):
        report = measure_coverage(get_test("SB").program, ooo_machine, "tso")
        assert report.violations == 0
        assert report.complete
        assert report.total_outcomes == 4

    def test_coherent_covers_sc_on_mp(self):
        report = measure_coverage(get_test("MP").program, coherent_machine, "sc")
        assert report.violations == 0
        assert report.complete

    def test_curve_is_monotone(self):
        report = measure_coverage(get_test("LB").program, ooo_machine, "tso")
        values = [point.distinct for point in report.curve]
        assert values == sorted(values)
        assert all(point.distinct <= report.total_outcomes for point in report.curve)

    def test_early_stop_on_full_coverage(self):
        report = measure_coverage(get_test("SB").program, ooo_machine, "tso")
        assert report.curve[-1].seeds == report.seeds_to_full

    def test_incomplete_coverage_reported(self):
        """With very few seeds, IRIW's 15 outcomes cannot all appear."""
        report = measure_coverage(
            get_test("IRIW").program, ooo_machine, "tso", max_seeds=5
        )
        assert not report.complete
        assert "outcomes after" in report.summary()

    def test_violations_counted(self):
        """A deliberately wrong machine (always the same impossible
        outcome) registers as violations, not coverage."""
        bogus = frozenset({(("P0", "r1"), 99)})
        report = measure_coverage(
            get_test("SB").program, lambda p, s: bogus, "sc", max_seeds=10
        )
        assert report.violations == 10
        assert report.curve[-1].distinct == 0
