"""Tests for realizable final-memory assignments of partial orders."""

from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.litmus.finalstate import realizable_final_memory
from repro.models.registry import get_model


def single_execution(program, model="sc"):
    result = enumerate_behaviors(program, get_model(model))
    assert len(result.executions) >= 1
    return result.executions


class TestRealizableFinals:
    def test_no_locations_yields_empty_assignment(self, sb_program):
        (execution, *_) = single_execution(sb_program)
        assert realizable_final_memory(execution, frozenset()) == [{}]

    def test_never_written_location_keeps_init(self):
        builder = ProgramBuilder("quiet")
        builder.thread("T").load("r1", "x")
        (execution,) = single_execution(builder.build())
        assignments = realizable_final_memory(execution, frozenset({"x"}))
        assert assignments == [{"x": 0}]

    def test_unknown_location_gives_no_assignment(self, sb_program):
        (execution, *_) = single_execution(sb_program)
        assert realizable_final_memory(execution, frozenset({"nope"})) == []

    def test_ordered_stores_unique_final(self):
        builder = ProgramBuilder("ordered")
        t = builder.thread("T")
        t.store("x", 1)
        t.store("x", 2)
        (execution,) = single_execution(builder.build())
        assert realizable_final_memory(execution, frozenset({"x"})) == [{"x": 2}]

    def test_racing_stores_both_realizable(self):
        builder = ProgramBuilder("race")
        builder.thread("A").store("x", 1)
        builder.thread("B").store("x", 2)
        (execution,) = single_execution(builder.build(), "weak")
        assignments = realizable_final_memory(execution, frozenset({"x"}))
        assert sorted(a["x"] for a in assignments) == [1, 2]

    def test_joint_realizability_filters_cross_constraints(self):
        """2+2W under SC: per-address candidates exist for (x=1, y=1) but
        the pair is jointly impossible because each thread's stores stay
        program-ordered and the required orders form a cycle."""
        builder = ProgramBuilder("2+2w")
        a = builder.thread("A")
        a.store("x", 1)
        a.store("y", 2)
        b = builder.thread("B")
        b.store("y", 1)
        b.store("x", 2)
        joint = set()
        for execution in single_execution(builder.build(), "sc"):
            for assignment in realizable_final_memory(
                execution, frozenset({"x", "y"})
            ):
                joint.add((assignment["x"], assignment["y"]))
        assert (1, 1) not in joint
        assert (2, 2) in joint

    def test_pso_makes_the_forbidden_final_realizable(self):
        builder = ProgramBuilder("2+2w-pso")
        a = builder.thread("A")
        a.store("x", 1)
        a.store("y", 2)
        b = builder.thread("B")
        b.store("y", 1)
        b.store("x", 2)
        joint = set()
        for execution in single_execution(builder.build(), "pso"):
            for assignment in realizable_final_memory(
                execution, frozenset({"x", "y"})
            ):
                joint.add((assignment["x"], assignment["y"]))
        assert (1, 1) in joint

    def test_observation_pins_final_value(self):
        """CoWR: once the local load observes the remote overwrite, the
        local store is ordered first and the final value is fixed."""
        builder = ProgramBuilder("cowr")
        a = builder.thread("A")
        a.store("x", 1)
        a.load("r1", "x")
        builder.thread("B").store("x", 2)
        for execution in enumerate_behaviors(
            builder.build(), get_model("weak")
        ).executions:
            registers = execution.final_registers()
            finals = {
                assignment["x"]
                for assignment in realizable_final_memory(execution, frozenset({"x"}))
            }
            if registers[("A", "r1")] == 2:
                assert finals == {2}
