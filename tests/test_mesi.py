"""Tests for the MESI protocol variant."""

import pytest

from repro.errors import CoherenceError
from repro.coherence import run_coherent, verify_run
from repro.coherence.mesi import MesiController
from repro.coherence.protocol import LineState
from repro.isa.dsl import ProgramBuilder
from repro.operational.sc import run_sc

from tests.conftest import build_mp, build_sb


def controller(locations=("x",), caches=2):
    init_nodes = {loc: i for i, loc in enumerate(locations)}
    return MesiController(caches, {loc: 0 for loc in locations}, init_nodes)


class TestExclusiveState:
    def test_lone_read_installs_exclusive(self):
        ctl = controller()
        ctl.read(0, "x", nid=10)
        assert ctl.is_exclusive(0, "x")

    def test_second_reader_degrades_exclusive(self):
        ctl = controller()
        ctl.read(0, "x", nid=10)
        ctl.read(1, "x", nid=11)
        assert not ctl.is_exclusive(0, "x")
        assert ctl.state(0, "x") is LineState.SHARED
        assert ctl.state(1, "x") is LineState.SHARED

    def test_silent_upgrade_costs_no_transaction(self):
        ctl = controller()
        ctl.read(0, "x", nid=10)
        before = ctl.transactions
        ctl.write(0, "x", 5, nid=11)
        assert ctl.transactions == before
        assert ctl.silent_upgrades == 1
        assert ctl.state(0, "x") is LineState.MODIFIED

    def test_write_after_shared_costs_a_transaction(self):
        ctl = controller()
        ctl.read(0, "x", nid=10)
        ctl.read(1, "x", nid=11)
        before = ctl.transactions
        ctl.write(0, "x", 5, nid=12)
        assert ctl.transactions == before + 1
        assert ctl.silent_upgrades == 0

    def test_read_from_dirty_owner_downgrades(self):
        ctl = controller()
        ctl.read(0, "x", nid=10)
        ctl.write(0, "x", 5, nid=11)
        value, source, _ = ctl.read(1, "x", nid=12)
        assert value == 5 and source == 11
        assert ctl.state(0, "x") is LineState.SHARED


class TestMesiMachine:
    @pytest.mark.parametrize("name", ["sb", "mp"])
    def test_conformance(self, name):
        program = build_sb() if name == "sb" else build_mp()
        sc_outcomes = run_sc(program).outcomes
        for seed in range(15):
            run = run_coherent(program, seed=seed, protocol="mesi")
            assert verify_run(run, sc_outcomes=sc_outcomes).conforms

    def test_never_more_transactions_than_msi(self):
        program = build_mp()
        for seed in range(15):
            msi = run_coherent(program, seed=seed, protocol="msi")
            mesi = run_coherent(program, seed=seed, protocol="mesi")
            assert mesi.transactions <= msi.transactions
            assert mesi.registers == msi.registers  # same schedule, same result

    def test_private_workload_saves(self):
        builder = ProgramBuilder("private")
        thread = builder.thread("T")
        thread.load("r1", "p")
        thread.store("p", 7)
        msi = run_coherent(builder.build(), seed=0, protocol="msi")
        mesi = run_coherent(builder.build(), seed=0, protocol="mesi")
        assert mesi.transactions < msi.transactions

    def test_unknown_protocol_rejected(self):
        with pytest.raises(CoherenceError):
            run_coherent(build_sb(), seed=0, protocol="moesi")
