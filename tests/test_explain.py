"""Tests for the forbidden-outcome explanation tool."""

import pytest

from repro.errors import ReproError
from repro.analysis.explain import explain_trace
from repro.analysis.tracecheck import Trace, TraceOp
from repro.experiments.tracecheck_exp import fig5_trace, sb_trace

S, L, F = TraceOp.store, TraceOp.load, TraceOp.fence


class TestExplain:
    def test_observable_outcome(self):
        explanation = explain_trace(sb_trace(0, 0), "weak")
        assert not explanation.forbidden
        assert "IS observable" in explanation.render()

    def test_sb_under_sc_forbidden_with_reason(self):
        explanation = explain_trace(sb_trace(0, 0), "sc")
        assert explanation.forbidden
        assert explanation.contradictions
        text = explanation.render()
        assert "needs" in text and "already forced" in text

    def test_fenced_sb_forbidden_under_weak(self):
        fenced = Trace(
            (
                ("P0", (S("x", 1), F(), L("y", 0))),
                ("P1", (S("y", 1), F(), L("x", 0))),
            )
        )
        explanation = explain_trace(fenced, "weak")
        assert explanation.forbidden
        # the contradiction names the init store it would have to follow
        assert any("init" in c.obligation for c in explanation.contradictions)

    def test_fig5_forbidden_l9(self):
        explanation = explain_trace(fig5_trace(2, 4, 6, 1), "weak")
        assert explanation.forbidden
        assert explanation.contradictions

    def test_every_contradiction_has_an_assignment(self):
        explanation = explain_trace(sb_trace(0, 0), "sc")
        for contradiction in explanation.contradictions:
            assert contradiction.assignment
            assert "⊑" in contradiction.obligation

    def test_bypass_model_rejected(self):
        with pytest.raises(ReproError):
            explain_trace(sb_trace(0, 0), "tso")

    def test_agrees_with_trace_checker(self):
        """explain_trace's verdict must agree with check_trace on a sweep."""
        from itertools import product

        from repro.analysis.tracecheck import check_trace

        for r1, r2 in product((0, 1), repeat=2):
            trace = sb_trace(r1, r2)
            for model in ("sc", "weak"):
                assert (
                    explain_trace(trace, model).forbidden
                    != check_trace(trace, model).accepted
                )


class TestFindPath:
    def test_path_through_intermediate(self):
        from repro.core.graph import EdgeKind, ExecutionGraph
        from repro.core.node import Node
        from repro.isa.instructions import OpClass

        graph = ExecutionGraph()
        for nid in range(3):
            graph.add_node(Node(nid, 0, nid, None, OpClass.COMPUTE))
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        graph.add_edge(1, 2, EdgeKind.DATA)
        path = graph.find_path(0, 2)
        assert [(u, v) for u, v, _ in path] == [(0, 1), (1, 2)]

    def test_no_path(self):
        from repro.core.graph import ExecutionGraph
        from repro.core.node import Node
        from repro.isa.instructions import OpClass

        graph = ExecutionGraph()
        for nid in range(2):
            graph.add_node(Node(nid, 0, nid, None, OpClass.COMPUTE))
        assert graph.find_path(0, 1) is None

    def test_bypass_edges_do_not_carry_paths(self):
        from repro.core.graph import EdgeKind, ExecutionGraph
        from repro.core.node import Node
        from repro.isa.instructions import OpClass

        graph = ExecutionGraph()
        for nid in range(2):
            graph.add_node(Node(nid, 0, nid, None, OpClass.COMPUTE))
        graph.add_edge(0, 1, EdgeKind.BYPASS)
        assert graph.find_path(0, 1) is None
