"""The acceptance test for crash-safety: SIGKILL the server mid-
enumeration, restart it on the same WAL directory, and require the job
to finish with a behavior set byte-identical to a direct, uninterrupted
:func:`~repro.core.enumerate.enumerate_behaviors` run.

The server runs as a real subprocess through the ``repro serve`` CLI so
the kill is a genuine ``kill -9`` — no Python cleanup, no atexit, no
flushed buffers beyond what the WAL fsynced."""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.enumerate import enumerate_behaviors
from repro.errors import ServiceError
from repro.isa.assembler import assemble
from repro.models.registry import get_model
from repro.service.client import ServiceClient
from repro.service.jobs import canonical_result

HEAVY_SOURCE = """
test heavy3
init x=0 y=0 z=0

thread W
    S x, 1
    S y, 1

thread P
    r1 = L x
    r2 = L y
    S z, 1

thread Q
    r3 = L z
    r4 = L y
    r5 = L x
"""

REPO_ROOT = Path(__file__).resolve().parent.parent


def start_server(wal_dir: Path, *, slice_behaviors: int, slice_delay: float = 0.0):
    """Launch ``repro serve`` on an ephemeral port; return (process, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--wal-dir", str(wal_dir),
            "--workers", "1",
            "--slice", str(slice_behaviors),
            "--slice-delay", str(slice_delay),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        process.kill()
        pytest.fail(f"server did not announce its port: {line!r}")
    return process, f"http://127.0.0.1:{match.group(1)}"


def stop_server(process) -> None:
    if process.poll() is None:
        process.kill()
    process.wait(timeout=10)
    process.stdout.close()


@pytest.mark.slow
def test_sigkill_recovery_is_byte_identical(tmp_path):
    wal_dir = tmp_path / "service-data"

    # Phase 1: submit, wait until the enumeration is provably in flight
    # (progress recorded, not yet terminal), then kill -9.
    process, url = start_server(wal_dir, slice_behaviors=40, slice_delay=0.15)
    try:
        client = ServiceClient(url)
        job = client.submit(HEAVY_SOURCE, model="weak")
        job_id = job["id"]

        in_flight = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = client.status(job_id)
            if status["state"] == "running" and status["explored"] > 0:
                in_flight = status
                break
            assert status["state"] in ("queued", "running"), (
                f"job reached {status['state']!r} before it could be killed; "
                f"slice_delay too small for this machine"
            )
            time.sleep(0.02)
        assert in_flight is not None, "never observed the job mid-enumeration"

        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10)
    finally:
        stop_server(process)

    # The dead server answers nothing.
    with pytest.raises(ServiceError):
        ServiceClient(url, timeout=1.0).health()

    # Phase 2: restart on the same WAL dir.  Replay must re-queue the
    # accepted job (zero lost jobs) and resume from its checkpoint.
    process, url = start_server(wal_dir, slice_behaviors=1000)
    try:
        client = ServiceClient(url)
        recovered = client.status(job_id)  # known without resubmission
        assert recovered["state"] in ("queued", "running", "completed")
        done = client.wait(job_id, timeout=60)
    finally:
        stop_server(process)

    assert done["state"] == "completed", done.get("error", "")
    # It resumed — it did not start over and it did not lose progress.
    assert done["explored"] >= in_flight["explored"]
    assert done["attempts"] >= 2  # one attempt per server incarnation

    # The acceptance criterion: byte-identical to an uninterrupted run.
    direct = enumerate_behaviors(assemble(HEAVY_SOURCE).program, get_model("weak"))
    assert json.dumps(done["result"], sort_keys=True) == json.dumps(
        canonical_result(direct), sort_keys=True
    )


@pytest.mark.slow
def test_completed_results_survive_sigkill(tmp_path):
    """Results acknowledged before the kill are still served afterwards."""
    wal_dir = tmp_path / "service-data"
    process, url = start_server(wal_dir, slice_behaviors=1000)
    try:
        client = ServiceClient(url)
        job = client.submit(HEAVY_SOURCE, model="weak")
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == "completed"
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10)
    finally:
        stop_server(process)

    process, url = start_server(wal_dir, slice_behaviors=1000)
    try:
        after = ServiceClient(url).status(job["id"])
    finally:
        stop_server(process)
    assert after["state"] == "completed"
    assert after["result"] == done["result"]
