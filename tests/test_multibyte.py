"""Tests for the mixed-size access extension."""

import pytest

from repro.errors import ProgramError
from repro.core.enumerate import enumerate_behaviors
from repro.isa.operands import Reg
from repro.models.registry import get_model
from repro.multibyte import MultibyteBuilder, byte_cell, combine_bytes, split_bytes
from repro.tm import enumerate_transactional


class TestByteHelpers:
    def test_split_little_endian(self):
        assert split_bytes(0x0201, 2) == [0x01, 0x02]
        assert split_bytes(0, 3) == [0, 0, 0]
        assert split_bytes(0x123456, 3) == [0x56, 0x34, 0x12]

    def test_split_range_checked(self):
        with pytest.raises(ProgramError):
            split_bytes(256, 1)
        with pytest.raises(ProgramError):
            split_bytes(-1, 2)

    def test_combine_inverts_split(self):
        for value, width in ((0, 1), (255, 1), (0x0102, 2), (0xABCDEF, 3)):
            assert combine_bytes(split_bytes(value, width)) == value

    def test_byte_cell_names(self):
        assert byte_cell("x", 0) == "x#0"
        assert byte_cell("x", 1) == "x#1"


class TestDesugaring:
    def test_constant_store_and_load_round_trip(self):
        builder = MultibyteBuilder("rt")
        thread = builder.thread("T")
        thread.wide_store("x", 0x0304, 2)
        thread.fence()
        thread.wide_load("r9", "x", 2)
        program, _ = builder.build()
        (execution,) = enumerate_behaviors(program, get_model("sc")).executions
        assert execution.final_registers()[("T", "r9")] == 0x0304

    def test_register_valued_wide_store(self):
        builder = MultibyteBuilder("reg")
        thread = builder.thread("T")
        thread.inner.mov("r1", 0x0506)
        thread._advance(1)
        thread.wide_store("x", Reg("r1"), 2)
        thread.fence()
        thread.wide_load("r9", "x", 2)
        program, _ = builder.build()
        (execution,) = enumerate_behaviors(program, get_model("sc")).executions
        assert execution.final_registers()[("T", "r9")] == 0x0506

    def test_wide_init(self):
        builder = MultibyteBuilder("init")
        builder.init_wide("x", 0x0708, 2)
        builder.thread("T").wide_load("r9", "x", 2)
        program, _ = builder.build()
        (execution,) = enumerate_behaviors(program, get_model("sc")).executions
        assert execution.final_registers()[("T", "r9")] == 0x0708

    def test_three_byte_width(self):
        builder = MultibyteBuilder("w3")
        thread = builder.thread("T")
        thread.wide_store("x", 0x030201, 3)
        thread.fence()
        thread.wide_load("r9", "x", 3)
        program, _ = builder.build()
        (execution,) = enumerate_behaviors(program, get_model("sc")).executions
        assert execution.final_registers()[("T", "r9")] == 0x030201

    def test_blocks_cover_desugared_ranges(self):
        builder = MultibyteBuilder("blocks")
        thread = builder.thread("T")
        thread.wide_store("x", 1, 2)
        thread.wide_load("r9", "x", 2)
        program, blocks = builder.build()
        assert len(blocks) == 2
        store_block, load_block = blocks
        assert (store_block.start, store_block.end) == (0, 2)
        # 2 loads + mul + add + mov = 5 instructions
        assert (load_block.start, load_block.end) == (2, 7)
        assert load_block.end == len(program.threads[0].code)


class TestTearing:
    def test_torn_values_under_plain_sc(self):
        builder = MultibyteBuilder("tear")
        builder.thread("W").wide_store("x", 0x0101, 2)
        builder.thread("R").wide_load("r9", "x", 2)
        program, _ = builder.build()
        values = {
            execution.final_registers()[("R", "r9")]
            for execution in enumerate_behaviors(program, get_model("sc")).executions
        }
        assert values == {0x0000, 0x0001, 0x0100, 0x0101}

    def test_atomic_blocks_restore_single_copy(self):
        builder = MultibyteBuilder("tear")
        builder.thread("W").wide_store("x", 0x0101, 2)
        builder.thread("R").wide_load("r9", "x", 2)
        program, blocks = builder.build()
        values = {
            execution.final_registers()[("R", "r9")]
            for execution in enumerate_transactional(program, blocks, "sc").executions
        }
        assert values == {0x0000, 0x0101}

    def test_byte_store_merges_into_wide_load(self):
        builder = MultibyteBuilder("merge")
        builder.thread("W").wide_store("x", 0x0201, 2)
        builder.thread("B").byte_store("x", 0, 0xFF)
        builder.thread("R").wide_load("r9", "x", 2)
        program, blocks = builder.build()
        values = {
            execution.final_registers()[("R", "r9")]
            for execution in enumerate_transactional(program, blocks, "sc").executions
        }
        assert 0x02FF in values  # high byte from W, low byte from B
