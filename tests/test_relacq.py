"""Tests for acquire/release access annotations (half fences)."""


from repro.core.enumerate import enumerate_behaviors
from repro.isa.assembler import parse_instruction
from repro.isa.dsl import ProgramBuilder
from repro.isa.instructions import Load, Rmw, Store
from repro.isa.operands import Const, Reg
from repro.models import WEAK, OrderRequirement, get_model
from repro.operational.storebuffer import run_pso, run_tso

LOAD_ACQ = Load(Reg("r1"), Const("x"), acquire=True)
LOAD_PLAIN = Load(Reg("r1"), Const("x"))
STORE_REL = Store(Const("y"), Const(1), release=True)
STORE_PLAIN = Store(Const("y"), Const(1))


class TestAnnotationsInModels:
    def test_acquire_orders_later_memory_ops(self):
        assert WEAK.requirement(LOAD_ACQ, STORE_PLAIN) is OrderRequirement.ALWAYS
        assert WEAK.requirement(LOAD_ACQ, LOAD_PLAIN) is OrderRequirement.ALWAYS

    def test_plain_load_unordered(self):
        assert WEAK.requirement(LOAD_PLAIN, STORE_PLAIN) is OrderRequirement.SAME_ADDRESS

    def test_release_orders_earlier_memory_ops(self):
        assert WEAK.requirement(LOAD_PLAIN, STORE_REL) is OrderRequirement.ALWAYS
        assert WEAK.requirement(STORE_PLAIN, STORE_REL) is OrderRequirement.ALWAYS

    def test_release_does_not_constrain_later_ops(self):
        assert WEAK.requirement(STORE_REL, LOAD_PLAIN) is OrderRequirement.SAME_ADDRESS

    def test_acquire_does_not_constrain_earlier_ops(self):
        assert WEAK.requirement(STORE_PLAIN, LOAD_ACQ) is OrderRequirement.SAME_ADDRESS

    def test_tso_bypass_unaffected_by_acquire_target(self):
        tso = get_model("tso")
        assert tso.requirement(STORE_PLAIN, LOAD_ACQ) is OrderRequirement.NONE

    def test_rmw_annotations(self):
        rmw_acq = Rmw(Reg("r1"), Const("l"), *_xchg_args(), acquire=True)
        rmw_rel = Rmw(Reg("r1"), Const("l"), *_xchg_args(), release=True)
        assert WEAK.requirement(rmw_acq, LOAD_PLAIN) is OrderRequirement.ALWAYS
        assert WEAK.requirement(LOAD_PLAIN, rmw_rel) is OrderRequirement.ALWAYS


def _xchg_args():
    from repro.isa.instructions import RmwKind

    return (RmwKind.EXCHANGE, (Const(1),))


class TestAssemblerSyntax:
    def test_load_acquire(self):
        assert parse_instruction("r1 = L.acq x") == Load(Reg("r1"), Const("x"), acquire=True)

    def test_store_release(self):
        assert parse_instruction("S.rel y, 2") == Store(Const("y"), Const(2), release=True)

    def test_rmw_suffixes(self):
        acq = parse_instruction("r1 = xchg.acq l, 1")
        rel = parse_instruction("r1 = xchg.rel l, 1")
        both = parse_instruction("r1 = cas.acqrel l, 0, 1")
        assert acq.acquire and not acq.release
        assert rel.release and not rel.acquire
        assert both.acquire and both.release

    def test_annotations_visible_in_rendering(self):
        assert "L.acq" in str(parse_instruction("r1 = L.acq x"))
        assert "S.rel" in str(parse_instruction("S.rel y, 2"))
        assert ".acqrel" in str(parse_instruction("r1 = cas.acqrel l, 0, 1"))


def build_mp_ra():
    builder = ProgramBuilder("MP+ra")
    writer = builder.thread("P0")
    writer.store("x", 1)
    writer.store("flag", 1, release=True)
    reader = builder.thread("P1")
    reader.load("r1", "flag", acquire=True)
    reader.load("r2", "x")
    return builder.build()


def build_sb_ra():
    builder = ProgramBuilder("SB+ra")
    p0 = builder.thread("P0")
    p0.store("x", 1, release=True)
    p0.load("r1", "y", acquire=True)
    p1 = builder.thread("P1")
    p1.store("y", 1, release=True)
    p1.load("r2", "x", acquire=True)
    return builder.build()


def build_lb_acq():
    builder = ProgramBuilder("LB+acq")
    p0 = builder.thread("P0")
    p0.load("r1", "y", acquire=True)
    p0.store("x", 1)
    p1 = builder.thread("P1")
    p1.load("r2", "x", acquire=True)
    p1.store("y", 1)
    return builder.build()


def _observable(program, model_name, **registers):
    result = enumerate_behaviors(program, get_model(model_name))
    for outcome in result.register_outcomes():
        flat = {reg: value for (_, reg), value in outcome}
        if all(flat.get(name) == wanted for name, wanted in registers.items()):
            return True
    return False


class TestReleaseAcquireLitmus:
    def test_mp_ra_forbidden_everywhere(self):
        program = build_mp_ra()
        for model_name in ("sc", "tso", "pso", "weak"):
            assert not _observable(program, model_name, r1=1, r2=0), model_name

    def test_mp_plain_observable_under_weak(self):
        builder = ProgramBuilder("MP")
        w = builder.thread("P0")
        w.store("x", 1)
        w.store("flag", 1)
        r = builder.thread("P1")
        r.load("r1", "flag")
        r.load("r2", "x")
        assert _observable(builder.build(), "weak", r1=1, r2=0)

    def test_sb_ra_still_relaxed(self):
        """Release/acquire do NOT order a store before a later load —
        SB stays observable (the classic 'RA is weaker than SC')."""
        program = build_sb_ra()
        assert _observable(program, "weak", r1=0, r2=0)
        assert _observable(program, "tso", r1=0, r2=0)
        assert not _observable(program, "sc", r1=0, r2=0)

    def test_lb_acq_forbidden_under_weak(self):
        assert not _observable(build_lb_acq(), "weak", r1=1, r2=1)

    def test_release_lock_handoff(self):
        """A release store publishes the critical write under WEAK: the
        lock starts HELD (1); the owner writes data and releases; a taker
        that acquires the lock must see the data."""
        builder = ProgramBuilder("handoff")
        builder.init("lock", 1)
        owner = builder.thread("P0")
        owner.store("data", 42)
        owner.store("lock", 0, release=True)  # unlock
        taker = builder.thread("P1")
        taker.cas("r1", "lock", 0, 1, acquire=True)
        taker.load("r2", "data")
        result = enumerate_behaviors(builder.build(), get_model("weak"))
        acquired = 0
        for outcome in result.register_outcomes():
            flat = {reg: value for (_, reg), value in outcome}
            if flat["r1"] == 0:  # acquired the released lock
                acquired += 1
                assert flat["r2"] == 42
        assert acquired > 0


class TestOperationalConsistency:
    def test_mp_ra_axiomatic_equals_operational(self):
        program = build_mp_ra()
        for model_name, machine in (("tso", run_tso), ("pso", run_pso)):
            axiomatic = enumerate_behaviors(
                program, get_model(model_name)
            ).register_outcomes()
            assert axiomatic == machine(program).outcomes, model_name

    def test_pso_release_restores_mp(self):
        program = build_mp_ra()
        stale = frozenset({(("P1", "r1"), 1), (("P1", "r2"), 0)})
        assert stale not in run_pso(program).outcomes
