"""Unit tests for the litmus condition language."""

import pytest

from repro.errors import ConditionError
from repro.litmus.conditions import (
    And,
    Condition,
    MemoryAtom,
    Not,
    Or,
    RegisterAtom,
    parse_condition,
)


class TestParsing:
    def test_simple_exists(self):
        condition = parse_condition("exists (P0:r1=0 /\\ P1:r2=0)")
        assert condition.quantifier == "exists"
        assert isinstance(condition.expr, And)
        assert condition.expr.operands == (
            RegisterAtom("P0", "r1", 0),
            RegisterAtom("P1", "r2", 0),
        )

    def test_negated_exists(self):
        condition = parse_condition("~exists P0:r1=1")
        assert condition.quantifier == "~exists"
        assert condition.expr == RegisterAtom("P0", "r1", 1)

    def test_forall(self):
        assert parse_condition("forall [c]=2").quantifier == "forall"

    def test_memory_atom(self):
        condition = parse_condition("exists [x]=5")
        assert condition.expr == MemoryAtom("x", 5)

    def test_location_valued_atom(self):
        condition = parse_condition("exists P1:r6=z")
        assert condition.expr == RegisterAtom("P1", "r6", "z")

    def test_disjunction_and_precedence(self):
        condition = parse_condition("exists P0:r1=0 /\\ P0:r2=0 \\/ P0:r3=1")
        # /\\ binds tighter than \\/
        assert isinstance(condition.expr, Or)
        assert isinstance(condition.expr.operands[0], And)

    def test_parentheses_override(self):
        condition = parse_condition("exists P0:r1=0 /\\ (P0:r2=0 \\/ P0:r3=1)")
        assert isinstance(condition.expr, And)
        assert isinstance(condition.expr.operands[1], Or)

    def test_not(self):
        condition = parse_condition("forall not P0:r1=3")
        assert isinstance(condition.expr, Not)

    def test_negative_values(self):
        assert parse_condition("exists P0:r1=-2").expr == RegisterAtom("P0", "r1", -2)

    def test_missing_quantifier_rejected(self):
        with pytest.raises(ConditionError):
            parse_condition("(P0:r1=0)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ConditionError):
            parse_condition("exists P0:r1=0 extra")

    def test_malformed_atom_rejected(self):
        with pytest.raises(ConditionError):
            parse_condition("exists P0:=3")
        with pytest.raises(ConditionError):
            parse_condition("exists [x=3")

    def test_bad_quantifier_construction(self):
        with pytest.raises(ConditionError):
            Condition("maybe", RegisterAtom("P0", "r1", 0))

    def test_str_round_trip_parses(self):
        condition = parse_condition("exists (P0:r1=0 /\\ [x]=1) \\/ not P1:r2=3")
        again = parse_condition(str(condition))
        assert again == condition


class TestEvaluation:
    def test_register_atom(self):
        registers = {("P0", "r1"): 1}
        assert RegisterAtom("P0", "r1", 1).evaluate(registers, {})
        assert not RegisterAtom("P0", "r1", 0).evaluate(registers, {})
        assert not RegisterAtom("P9", "r1", 1).evaluate(registers, {})

    def test_memory_atom(self):
        assert MemoryAtom("x", 5).evaluate({}, {"x": 5})
        assert not MemoryAtom("x", 5).evaluate({}, {"x": 4})
        assert not MemoryAtom("x", 5).evaluate({}, {})

    def test_connectives(self):
        registers = {("P0", "r1"): 1, ("P0", "r2"): 0}
        a = RegisterAtom("P0", "r1", 1)
        b = RegisterAtom("P0", "r2", 1)
        assert And((a, Not(b))).evaluate(registers, {})
        assert Or((b, a)).evaluate(registers, {})
        assert not And((a, b)).evaluate(registers, {})

    def test_locations_collection(self):
        condition = parse_condition("exists (P0:r1=0 /\\ [x]=1) \\/ [y]=2")
        assert condition.locations() == frozenset({"x", "y"})

    def test_judge_quantifiers(self):
        exists = parse_condition("exists P0:r1=0")
        assert exists.judge(1, 5) and not exists.judge(0, 5)
        nexists = parse_condition("~exists P0:r1=0")
        assert nexists.judge(0, 5) and not nexists.judge(1, 5)
        forall = parse_condition("forall P0:r1=0")
        assert forall.judge(5, 5) and not forall.judge(4, 5)
