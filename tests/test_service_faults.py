"""Seeded fault injection against the service layer.

Three robustness claims, each driven deterministically by
:class:`~repro.testing.faults.ServiceFaultInjector`:

* a failed WAL write surfaces as 503 and never loses an *acknowledged*
  job — the submission either became durable or was refused;
* a worker crashing mid-job is retried a bounded number of times from
  its checkpoint, then quarantined with a clear error, and the server
  keeps serving other jobs;
* a clock jump past a job's deadline fails that job cleanly with a
  deadline error instead of wedging it.
"""

import pytest

from repro.errors import ServiceError, WALError
from repro.service.pool import WorkerPool
from repro.service.wal import WriteAheadLog, replay_wal
from repro.testing.faults import ServiceFaultInjector, inject_service_faults

from tests.test_service import HEAVY_SOURCE, SB_SOURCE, ServerThread
from repro.service.client import ServiceClient


class TestWALWriteFaults:
    def test_injected_failure_surfaces_as_wal_error(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "jobs.wal", fsync=False)
        with inject_service_faults(seed=1, wal_rate=1.0, max_faults=1):
            with pytest.raises(WALError) as info:
                wal.append("submitted", "j1", {})
            assert "injected WAL write failure" in str(info.value)
            wal.append("state", "j1", {"state": "running"})  # budget spent
        wal.close()
        # The failed append left no trace; the later one is durable.
        records = replay_wal(tmp_path / "jobs.wal")
        assert [r.event for r in records] == ["state"]

    def test_submission_is_refused_not_lost(self, tmp_path):
        """A 503 submission was never acknowledged, so 'zero lost
        accepted jobs' holds vacuously — and the server stays up."""
        with ServerThread(wal_dir=tmp_path) as fixture:
            client = ServiceClient(fixture.url)
            with inject_service_faults(seed=7, wal_rate=1.0, max_faults=1):
                with pytest.raises(ServiceError) as info:
                    client.submit(SB_SOURCE, model="weak")
                assert info.value.status == 503
                assert "cannot persist submission" in str(info.value)
                # the refused job is genuinely absent, not half-created
                assert fixture.server.store.jobs == {}
                # fault budget exhausted: the retry is accepted and runs
                job = client.submit(SB_SOURCE, model="weak")
                done = client.wait(job["id"], timeout=30)
            assert done["state"] == "completed"
            assert done["result"]["executions"] == 4

    def test_seeded_faults_replay_identically(self, tmp_path):
        def run(seed: int) -> list[int]:
            wal = WriteAheadLog(tmp_path / f"wal-{seed}", fsync=False)
            outcomes = []
            with inject_service_faults(seed=seed, wal_rate=0.5):
                for i in range(20):
                    try:
                        wal.append("state", "j", {"i": i})
                        outcomes.append(i)
                    except WALError:
                        pass
            wal.close()
            (tmp_path / f"wal-{seed}").unlink()
            return outcomes

        assert run(42) == run(42)  # same seed, same fault sequence
        assert run(42) != run(43)  # different seed, different faults


class TestWorkerCrashFaults:
    def test_bounded_retry_then_quarantine(self, tmp_path):
        """Every slice submission dies → retries burn down → the job is
        quarantined with an error naming the crash count."""
        pool = WorkerPool(workers=0, retries=2)
        with inject_service_faults(seed=3, worker_crash_rate=1.0):
            outcome = pool.run_job(SB_SOURCE, "weak", {}, None, tmp_path / "c.ckpt")
        assert outcome.status == "quarantined"
        assert outcome.attempts == 4  # 1 + retries(2) + the final straw
        assert "crashed 3 times" in outcome.error
        assert "retry budget 2 exhausted" in outcome.error

    def test_transient_crash_recovers_from_checkpoint(self, tmp_path):
        """One injected crash, then clean slices: the job completes and
        the retry resumed from the checkpoint (attempts == 2)."""
        pool = WorkerPool(workers=0, slice_behaviors=25, retries=1)
        with inject_service_faults(seed=5, worker_crash_rate=1.0, max_faults=1):
            outcome = pool.run_job(
                HEAVY_SOURCE, "weak", {}, None, tmp_path / "c.ckpt"
            )
        assert outcome.status == "completed"
        assert outcome.attempts == 2
        assert outcome.result["complete"] is True

    def test_quarantined_job_does_not_take_down_the_server(self, tmp_path):
        with ServerThread(wal_dir=tmp_path, retries=1) as fixture:
            client = ServiceClient(fixture.url)
            with inject_service_faults(seed=9, worker_crash_rate=1.0, max_faults=2):
                doomed = client.submit(HEAVY_SOURCE, model="weak")
                bad = client.wait(doomed["id"], timeout=30)
            assert bad["state"] == "quarantined"
            assert "quarantined" in bad["error"]
            # the server still accepts and completes new work
            job = client.submit(SB_SOURCE, model="weak")
            done = client.wait(job["id"], timeout=30)
            assert done["state"] == "completed"
            health = client.health()
            assert health["jobs"]["quarantined"] == 1
            assert health["jobs"]["completed"] == 1


class TestClockFaults:
    def test_clock_jump_past_deadline_fails_job_cleanly(self, tmp_path):
        """The wrapped clock jumps forward 1000s mid-job; the driver's
        next between-slice deadline check fails the job with a deadline
        error instead of letting it run (or hang) forever."""
        injector = ServiceFaultInjector(clock_jumps={3: 1000.0})
        pool = WorkerPool(workers=0, slice_behaviors=25, clock=injector.clock())
        # clock calls: 1 = run_job start, 2 = slice-1 deadline check,
        # 3 = slice-2 deadline check ← jumps past the deadline here.
        outcome = pool.run_job(
            HEAVY_SOURCE, "weak", {}, 30.0, tmp_path / "c.ckpt"
        )
        assert outcome.status == "failed"
        assert "deadline of 30.0s exceeded" in outcome.error
        assert outcome.explored > 0  # it really was mid-enumeration
        assert injector.stats.injected.get(("clock", "jump")) == 1

    def test_clock_jump_through_the_server(self, tmp_path):
        injector = ServiceFaultInjector(clock_jumps={4: 1000.0})
        with ServerThread(
            wal_dir=tmp_path,
            slice_behaviors=25,
            clock=injector.clock(),
        ) as fixture:
            client = ServiceClient(fixture.url)
            job = client.submit(HEAVY_SOURCE, model="weak", deadline_seconds=30)
            done = client.wait(job["id"], timeout=30)
            assert done["state"] == "failed"
            assert "deadline" in done["error"]
            # a deadline-free job on the jumped clock still completes
            ok = client.submit(SB_SOURCE, model="weak")
            assert client.wait(ok["id"], timeout=30)["state"] == "completed"
