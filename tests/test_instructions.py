"""Unit tests for the static instruction set."""

import pytest

from repro.errors import ExecutionError, ProgramError
from repro.isa.instructions import (
    Branch,
    Compute,
    Fence,
    FenceKind,
    Load,
    OpClass,
    Rmw,
    RmwKind,
    Store,
    alu_eval,
)
from repro.isa.operands import Const, Reg


class TestOpClass:
    def test_memory_classification(self):
        assert OpClass.LOAD.reads_memory() and not OpClass.LOAD.writes_memory()
        assert OpClass.STORE.writes_memory() and not OpClass.STORE.reads_memory()
        assert OpClass.RMW.reads_memory() and OpClass.RMW.writes_memory()
        assert not OpClass.COMPUTE.is_memory()
        assert not OpClass.FENCE.is_memory()
        assert not OpClass.BRANCH.is_memory()


class TestFenceKind:
    def test_full_fence_orders_all_memory(self):
        for cls in (OpClass.LOAD, OpClass.STORE, OpClass.RMW):
            assert FenceKind.FULL.orders_before(cls)
            assert FenceKind.FULL.orders_after(cls)

    def test_full_fence_ignores_non_memory(self):
        assert not FenceKind.FULL.orders_before(OpClass.COMPUTE)
        assert not FenceKind.FULL.orders_after(OpClass.BRANCH)

    def test_store_load_fence(self):
        assert FenceKind.STORE_LOAD.orders_before(OpClass.STORE)
        assert not FenceKind.STORE_LOAD.orders_before(OpClass.LOAD)
        assert FenceKind.STORE_LOAD.orders_after(OpClass.LOAD)
        assert not FenceKind.STORE_LOAD.orders_after(OpClass.STORE)

    def test_load_load_fence(self):
        assert FenceKind.LOAD_LOAD.orders_before(OpClass.LOAD)
        assert FenceKind.LOAD_LOAD.orders_after(OpClass.LOAD)
        assert not FenceKind.LOAD_LOAD.orders_before(OpClass.STORE)
        assert not FenceKind.LOAD_LOAD.orders_after(OpClass.STORE)

    def test_rmw_matches_both_sides(self):
        assert FenceKind.STORE_STORE.orders_before(OpClass.RMW)
        assert FenceKind.LOAD_LOAD.orders_after(OpClass.RMW)


class TestAlu:
    @pytest.mark.parametrize(
        "op,args,expected",
        [
            ("mov", (5,), 5),
            ("add", (2, 3), 5),
            ("sub", (5, 3), 2),
            ("mul", (4, 3), 12),
            ("xor", (5, 3), 6),
            ("and", (6, 3), 2),
            ("or", (4, 1), 5),
            ("eq", (2, 2), 1),
            ("eq", (2, 3), 0),
            ("ne", (2, 3), 1),
            ("lt", (1, 2), 1),
            ("le", (2, 2), 1),
            ("gt", (3, 2), 1),
            ("ge", (1, 2), 0),
            ("not", (0,), 1),
            ("not", (7,), 0),
        ],
    )
    def test_operations(self, op, args, expected):
        assert alu_eval(op, args) == expected

    def test_eq_works_on_location_names(self):
        assert alu_eval("eq", ("x", "x")) == 1
        assert alu_eval("eq", ("x", "y")) == 0

    def test_arithmetic_on_locations_rejected(self):
        with pytest.raises(ExecutionError):
            alu_eval("add", ("x", 1))

    def test_unknown_op_rejected(self):
        with pytest.raises(ProgramError):
            alu_eval("frobnicate", (1, 2))


class TestInstructionProtocol:
    def test_compute_sources_and_dest(self):
        instr = Compute(Reg("r3"), "add", (Reg("r1"), Const(2)))
        assert instr.sources() == (Reg("r1"),)
        assert instr.dest() == Reg("r3")
        assert instr.addr_operand() is None

    def test_compute_arity_checked(self):
        with pytest.raises(ProgramError):
            Compute(Reg("r1"), "add", (Const(1),))
        with pytest.raises(ProgramError):
            Compute(Reg("r1"), "mov", (Const(1), Const(2)))

    def test_load_protocol(self):
        instr = Load(Reg("r1"), Const("x"))
        assert instr.sources() == ()
        assert instr.dest() == Reg("r1")
        assert instr.addr_operand() == Const("x")

    def test_register_indirect_load(self):
        instr = Load(Reg("r1"), Reg("r6"))
        assert instr.sources() == (Reg("r6"),)

    def test_store_protocol(self):
        instr = Store(Const("x"), Reg("r1"))
        assert instr.sources() == (Reg("r1"),)
        assert instr.dest() is None
        assert instr.addr_operand() == Const("x")

    def test_branch_taken_logic(self):
        bnez = Branch("loop", Reg("r1"), negate=False)
        beqz = Branch("loop", Reg("r1"), negate=True)
        jmp = Branch("loop", None)
        assert bnez.taken(1) and not bnez.taken(0)
        assert beqz.taken(0) and not beqz.taken(1)
        assert jmp.taken(0) and jmp.taken(1)

    def test_fence_has_no_sources(self):
        assert Fence().sources() == ()
        assert Fence(FenceKind.STORE_LOAD).kind is FenceKind.STORE_LOAD


class TestRmw:
    def test_exchange_stores_operand(self):
        instr = Rmw(Reg("r1"), Const("x"), RmwKind.EXCHANGE, (Const(9),))
        assert instr.stored_value(3, (9,)) == 9

    def test_cas_success_and_failure(self):
        instr = Rmw(Reg("r1"), Const("l"), RmwKind.CAS, (Const(0), Const(1)))
        assert instr.stored_value(0, (0, 1)) == 1
        assert instr.stored_value(5, (0, 1)) is None

    def test_fetch_add(self):
        instr = Rmw(Reg("r1"), Const("c"), RmwKind.FETCH_ADD, (Const(2),))
        assert instr.stored_value(3, (2,)) == 5

    def test_fetch_add_requires_int(self):
        instr = Rmw(Reg("r1"), Const("c"), RmwKind.FETCH_ADD, (Const(2),))
        with pytest.raises(ExecutionError):
            instr.stored_value("x", (2,))

    def test_arity_validated(self):
        with pytest.raises(ProgramError):
            Rmw(Reg("r1"), Const("l"), RmwKind.CAS, (Const(0),))
        with pytest.raises(ProgramError):
            Rmw(Reg("r1"), Const("l"), RmwKind.EXCHANGE, (Const(0), Const(1)))

    def test_sources_include_address_register(self):
        instr = Rmw(Reg("r1"), Reg("r6"), RmwKind.EXCHANGE, (Reg("r2"),))
        assert set(instr.sources()) == {Reg("r6"), Reg("r2")}
