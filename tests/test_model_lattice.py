"""The model lattice, proved statically and spot-checked dynamically.

The registry's canonical chain ``SC ⊆ TSO ⊆ PSO ⊆ WEAK`` is asserted
two ways: :func:`repro.analysis.static.statically_contained` proves it
from the tables and flags alone, and the enumerator confirms it on the
litmus library (every outcome a stronger model admits, the weaker model
admits too).
"""

import pytest

from repro.analysis.compare import outcome_sets
from repro.analysis.static import statically_contained
from repro.analysis.static.modellint import CANONICAL_CHAIN
from repro.litmus.library import all_tests, get_test
from repro.models.registry import all_models, available_models

_CHAIN_PAIRS = list(zip(CANONICAL_CHAIN, CANONICAL_CHAIN[1:]))

#: A representative slice of the library for the enumeration-backed
#: check (the full library × 4 models is the TAB-STATIC experiment's
#: job; these cover every relaxation class quickly).
_SPOT_TESTS = ("SB", "MP", "LB", "CoRR", "2+2W", "R", "MP+ctrl", "SB+rmw")


@pytest.fixture(scope="module")
def spot_outcomes():
    chain = tuple(CANONICAL_CHAIN)
    return {
        name: outcome_sets(get_test(name).program, chain) for name in _SPOT_TESTS
    }


class TestStaticLattice:
    @pytest.mark.parametrize("stronger, weaker", _CHAIN_PAIRS)
    def test_chain_link_provable(self, stronger, weaker):
        assert statically_contained(stronger, weaker) is True

    def test_chain_is_transitively_provable(self):
        for i, stronger in enumerate(CANONICAL_CHAIN):
            for weaker in CANONICAL_CHAIN[i + 1 :]:
                assert statically_contained(stronger, weaker) is True

    def test_every_model_contains_itself(self):
        for model in all_models():
            assert statically_contained(model, model) is True

    def test_registry_exposes_the_chain(self):
        assert set(CANONICAL_CHAIN) <= set(available_models())


class TestEnumeratedLattice:
    @pytest.mark.parametrize("name", _SPOT_TESTS)
    @pytest.mark.parametrize("stronger, weaker", _CHAIN_PAIRS)
    def test_outcomes_nest(self, spot_outcomes, name, stronger, weaker):
        sets = spot_outcomes[name]
        assert sets.included(stronger, weaker), (
            f"{name}: {stronger} outcome(s) escape {weaker}: "
            f"{sorted(map(repr, sets.only_in(stronger, weaker)))}"
        )

    @pytest.mark.parametrize("name", _SPOT_TESTS)
    def test_enumerations_complete(self, spot_outcomes, name):
        sets = spot_outcomes[name]
        assert all(sets.is_complete(model) for model in CANONICAL_CHAIN)

    def test_weak_is_strictly_weaker_somewhere(self, spot_outcomes):
        assert any(
            spot_outcomes[name].only_in("weak", "sc") for name in _SPOT_TESTS
        )


def test_library_names_cover_spot_tests():
    names = {test.name for test in all_tests()}
    assert set(_SPOT_TESTS) <= names
