"""Tests for the static delay-set analyzer and the model-spec linter."""

import pytest

from repro.analysis.fencesynth import synthesize_fences
from repro.analysis.static import (
    DelayEdge,
    analyze_program,
    canonical_chain_findings,
    effective_requirement,
    lint_all_models,
    lint_model,
    statically_contained,
)
from repro.analysis.static.conflict import (
    StaticAccess,
    collect_accesses,
    enforced_order,
    find_critical_cycles,
)
from repro.analysis.static.modellint import PAPER_MODELS
from repro.cli import main
from repro.isa.dsl import ProgramBuilder
from repro.isa.instructions import OpClass
from repro.isa.lint import LintLevel
from repro.litmus.library import get_test
from repro.models.base import OrderRequirement
from repro.models.registry import get_model


def _delays(name, model):
    report = analyze_program(get_test(name).program, model)
    return sorted((d.thread, d.first_index, d.second_index) for d in report.delays)


class TestConflictGraph:
    def test_collect_accesses_mp(self):
        accesses = collect_accesses(get_test("MP").program)
        assert [str(a) for a in accesses] == [
            "P0[0]:Wx",
            "P0[1]:Wflag",
            "P1[0]:Rflag",
            "P1[1]:Rx",
        ]

    def test_rmw_is_both(self):
        accesses = collect_accesses(get_test("SB+rmw").program)
        assert any(a.kind == "RW" for a in accesses)

    def test_dynamic_address_aliases_everything(self):
        dynamic = StaticAccess("T", 0, "R", None)
        other = StaticAccess("U", 0, "W", "x")
        assert dynamic.may_alias(other) and other.may_alias(dynamic)

    def test_mp_has_one_critical_cycle(self):
        program = get_test("MP").program
        cycles = find_critical_cycles(program)
        assert len(cycles) == 1
        assert {a.thread for a in cycles[0]} == {"P0", "P1"}

    def test_iriw_cycle_spans_four_threads(self):
        cycles = find_critical_cycles(get_test("IRIW").program)
        assert any(len({a.thread for a in cycle}) == 4 for cycle in cycles)

    def test_enforced_order_respects_fences(self):
        thread = get_test("SB+fences").program.threads[0]
        matrix = enforced_order(thread, get_model("weak"))
        # store[0] -> fence[1] -> load[2]: enforced transitively.
        assert matrix[0][2]

    def test_enforced_order_dataflow(self):
        thread = get_test("LB+data").program.threads[0]
        matrix = enforced_order(thread, get_model("weak"))
        assert matrix[0][len(thread.code) - 1]


class TestDelayEdges:
    def test_mp_under_weak_needs_both_edges(self):
        assert _delays("MP", "weak") == [("P0", 0, 1), ("P1", 0, 1)]

    def test_mp_under_pso_needs_writer_side_only(self):
        assert _delays("MP", "pso") == [("P0", 0, 1)]

    def test_mp_under_sc_needs_nothing(self):
        assert _delays("MP", "sc") == []

    def test_r_under_tso_is_the_store_load_edge(self):
        assert _delays("R", "tso") == [("P1", 0, 1)]

    def test_corr_only_under_uncorrected_weak(self):
        assert _delays("CoRR", "weak") == [("P1", 0, 1)]
        assert _delays("CoRR", "weak-corr") == []

    def test_release_acquire_discharges_mp(self):
        assert _delays("MP+ra", "weak") == []

    def test_control_dependency_is_not_trusted(self):
        # The branch does not order the loads statically; the delay spans it.
        assert _delays("MP+ctrl", "weak") == [("P1", 0, 2)]

    def test_covers_matches_fencesynth_convention(self):
        edge = DelayEdge("P1", 0, 2)
        assert not edge.covers(0)
        assert edge.covers(1) and edge.covers(2)
        assert not edge.covers(3)

    def test_conservative_flag(self):
        assert analyze_program(get_test("MP+addr").program, "weak").conservative
        assert not analyze_program(get_test("MP").program, "weak").conservative

    def test_fenced_variant_is_clean(self):
        report = analyze_program(get_test("SB+fences").program, "weak")
        assert report.delays == () and report.fence_sites == ()

    def test_single_thread_has_no_cycles(self):
        builder = ProgramBuilder("solo")
        thread = builder.thread("T")
        thread.store("x", 1)
        thread.load("r1", "x")
        report = analyze_program(builder.build(), "weak")
        assert report.critical_cycles == ()
        assert report.races == ()


class TestRacePredictions:
    def test_mp_races_on_both_locations(self):
        report = analyze_program(get_test("MP").program, "weak")
        assert report.predicts_race("P1", "flag")
        assert report.predicts_race("P1", "x")
        assert not report.predicts_race("P0", "x")

    def test_dynamic_address_race_matches_any_location(self):
        report = analyze_program(get_test("MP+addr").program, "weak")
        assert report.predicts_race("P1", "x")

    @pytest.mark.parametrize("model", ["sc", "tso", "pso", "weak"])
    def test_race_set_is_model_independent_for_coherent_models(self, model):
        weak = analyze_program(get_test("SB").program, "weak")
        other = analyze_program(get_test("SB").program, model)
        assert {str(r) for r in other.races} == {str(r) for r in weak.races}


class TestFenceSoundnessSpotChecks:
    @pytest.mark.parametrize(
        "name, model",
        [("SB", "weak"), ("MP", "weak"), ("MP", "pso"), ("R", "tso"), ("CoRR", "weak")],
    )
    def test_synthesized_sites_are_covered(self, name, model):
        test = get_test(name)
        report = analyze_program(test.program, model)
        synthesis = synthesize_fences(test, model)
        for solution in synthesis.solutions:
            for site in solution:
                assert report.covers_site(site.thread, site.position), (
                    name,
                    model,
                    str(site),
                )


class TestModelLinter:
    def test_paper_models_error_free_except_naive_tso(self):
        # Quantified over the paper's model set, not the live registry —
        # other tests register deliberately-broken models.
        for name in PAPER_MODELS:
            errors = [f for f in lint_model(name) if f.level is LintLevel.ERROR]
            if name == "naive-tso":
                assert errors, "the Figure 11 strawman must be flagged"
            else:
                assert errors == [], (name, [str(f) for f in errors])

    def test_lint_all_models_covers_the_registry(self):
        assert set(PAPER_MODELS) <= set(lint_all_models())

    def test_naive_tso_flagged_as_dependency_breaking(self):
        messages = [f.message for f in lint_model("naive-tso")]
        assert any("dependency-breaking" in message for message in messages)

    def test_sc_fences_redundant_info(self):
        findings = lint_model("sc")
        assert any(
            f.level is LintLevel.INFO and "redundant" in f.message for f in findings
        )

    def test_effective_requirement_folds_bypass(self):
        tso = get_model("tso")
        assert (
            effective_requirement(tso, OpClass.STORE, OpClass.LOAD)
            is OrderRequirement.SAME_ADDRESS
        )
        assert (
            tso.class_requirement(OpClass.STORE, OpClass.LOAD) is OrderRequirement.NONE
        )


class TestStaticContainment:
    @pytest.mark.parametrize(
        "stronger, weaker",
        [("sc", "tso"), ("tso", "pso"), ("pso", "weak"), ("sc", "weak"),
         ("weak-corr", "weak"), ("weak", "weak-spec")],
    )
    def test_canonical_chain_is_provable(self, stronger, weaker):
        assert statically_contained(stronger, weaker) is True

    def test_reverse_directions_are_not_claimed(self):
        assert statically_contained("weak", "sc") is None
        assert statically_contained("tso", "sc") is None

    def test_naive_tso_is_outside_the_lattice(self):
        assert statically_contained("tso", "naive-tso") is None
        assert statically_contained("naive-tso", "tso") is None

    def test_chain_findings_empty(self):
        assert canonical_chain_findings() == []


class TestAnalyzeCli:
    def test_single_test(self, capsys):
        code = main(["analyze", "MP", "-m", "weak"])
        out = capsys.readouterr().out
        assert code == 1  # races predicted
        assert "2 required delay edge(s)" in out
        assert "P0[0 -> 1]" in out

    def test_race_free_test_exits_zero(self, capsys):
        assert main(["analyze", "3.2W", "-m", "weak"]) == 0

    def test_library_sweep(self, capsys):
        assert main(["analyze", "--library", "-m", "weak"]) == 0
        out = capsys.readouterr().out
        assert "SB" in out and "IRIW" in out

    def test_requires_test_or_library(self, capsys):
        assert main(["analyze"]) == 2

    def test_models_lint_flag(self, capsys):
        assert main(["models", "--lint"]) == 1  # naive-tso errors
        out = capsys.readouterr().out
        assert "naive-tso" in out
        assert main(["models", "--lint", "weak"]) == 0


class TestStaticraceExperiment:
    def test_experiment_passes(self):
        from repro.experiments import staticrace_exp

        result = staticrace_exp.run()
        failing = [claim.description for claim in result.claims if not claim.holds]
        assert failing == []
        assert "speedup" in result.details
