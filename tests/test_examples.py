"""Smoke tests: every example script runs to completion.

Each example is executed in-process (runpy) with stdout captured; the
assertions check for the headline facts each script prints, so a silent
regression in an example's logic fails here rather than in a user's
terminal.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys, argv: list[str] | None = None) -> str:
    saved_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "sc          3 executions" in out
    assert "weak        4 executions" in out


def test_verify_locking(capsys):
    out = run_example("verify_locking.py", capsys)
    assert "mutual exclusion VIOLATED" in out
    assert "WELL SYNCHRONIZED" in out


def test_speculation_study(capsys):
    out = run_example("speculation_study.py", capsys)
    assert "NEW behaviors only possible with speculation" in out
    assert "rolled back" in out


def test_tso_bypass(capsys):
    out = run_example("tso_bypass.py", capsys)
    assert "axiomatic TSO == operational TSO outcome sets: True" in out
    assert "~bypass~>" in out


def test_coherence_audit(capsys):
    out = run_example("coherence_audit.py", capsys)
    assert "conform" in out
    assert "ownership-transfer" in out


def test_litmus_explorer_overview(capsys):
    out = run_example("litmus_explorer.py", capsys)
    assert "holds on every test" in out


def test_litmus_explorer_zoom(capsys):
    out = run_example("litmus_explorer.py", capsys, argv=["IRIW+fences"])
    assert "IRIW+fences" in out


def test_trace_checking(capsys):
    out = run_example("trace_checking.py", capsys)
    assert "double Figure 5, rules ab : trace ACCEPTED" in out
    assert "double Figure 5, rules abc: trace REJECTED" in out


def test_cycle_synthesis(capsys):
    out = run_example("cycle_synthesis.py", capsys)
    assert "PREDICTION WRONG" not in out


def test_fence_synthesis(capsys):
    out = run_example("fence_synthesis.py", capsys)
    assert "MP under pso: 1 fence(s) suffice" in out
    assert "MP+ra is robust" in out


@pytest.mark.slow
def test_ooo_conformance(capsys):
    out = run_example("ooo_conformance.py", capsys)
    assert "0 violations" in out
    assert "non-TSO outcome" in out
