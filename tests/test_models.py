"""Unit tests for memory-model definitions and the table machinery."""

import pytest

from repro.errors import ProgramError, ReproError
from repro.isa.instructions import (
    Compute,
    Fence,
    FenceKind,
    Load,
    OpClass,
    Rmw,
    RmwKind,
    Store,
)
from repro.isa.operands import Const, Reg
from repro.models import (
    NAIVE_TSO,
    PSO,
    SC,
    TSO,
    WEAK,
    WEAK_CORR,
    WEAK_SPEC,
    MemoryModel,
    OrderRequirement,
    ReorderingTable,
    available_models,
    get_model,
    register_model,
    speculative,
)

LOAD = Load(Reg("r1"), Const("x"))
STORE = Store(Const("x"), Const(1))
STORE_OTHER = Store(Const("y"), Const(1))
FENCE = Fence()
COMPUTE = Compute(Reg("r1"), "mov", (Const(1),))
RMW = Rmw(Reg("r1"), Const("x"), RmwKind.EXCHANGE, (Const(1),))


class TestReorderingTable:
    def test_default_is_none(self):
        table = ReorderingTable({})
        assert table.lookup(OpClass.LOAD, OpClass.LOAD) is OrderRequirement.NONE

    def test_rmw_expands_to_strongest(self):
        table = ReorderingTable(
            {
                (OpClass.LOAD, OpClass.LOAD): OrderRequirement.ALWAYS,
                (OpClass.STORE, OpClass.LOAD): OrderRequirement.NONE,
            }
        )
        assert table.lookup(OpClass.RMW, OpClass.LOAD) is OrderRequirement.ALWAYS

    def test_rmw_and_fence_keys_rejected(self):
        with pytest.raises(ProgramError):
            ReorderingTable({(OpClass.RMW, OpClass.LOAD): OrderRequirement.ALWAYS})
        with pytest.raises(ProgramError):
            ReorderingTable({(OpClass.FENCE, OpClass.LOAD): OrderRequirement.ALWAYS})


class TestWeakModel:
    def test_three_same_address_entries(self):
        assert WEAK.requirement(LOAD, STORE) is OrderRequirement.SAME_ADDRESS
        assert WEAK.requirement(STORE, LOAD) is OrderRequirement.SAME_ADDRESS
        assert WEAK.requirement(STORE, STORE) is OrderRequirement.SAME_ADDRESS

    def test_load_load_free(self):
        assert WEAK.requirement(LOAD, LOAD) is OrderRequirement.NONE

    def test_fence_orders_memory_both_ways(self):
        assert WEAK.requirement(LOAD, FENCE) is OrderRequirement.ALWAYS
        assert WEAK.requirement(FENCE, STORE) is OrderRequirement.ALWAYS
        assert WEAK.requirement(FENCE, FENCE) is OrderRequirement.ALWAYS

    def test_fence_ignores_compute(self):
        assert WEAK.requirement(COMPUTE, FENCE) is OrderRequirement.NONE
        assert WEAK.requirement(FENCE, COMPUTE) is OrderRequirement.NONE

    def test_fine_grained_fences(self):
        st_ld = Fence(FenceKind.STORE_LOAD)
        assert WEAK.requirement(STORE, st_ld) is OrderRequirement.ALWAYS
        assert WEAK.requirement(LOAD, st_ld) is OrderRequirement.NONE
        assert WEAK.requirement(st_ld, LOAD) is OrderRequirement.ALWAYS
        assert WEAK.requirement(st_ld, STORE) is OrderRequirement.NONE

    def test_rmw_inherits_store_side(self):
        assert WEAK.requirement(RMW, STORE) is OrderRequirement.SAME_ADDRESS
        assert WEAK.requirement(RMW, LOAD) is OrderRequirement.SAME_ADDRESS


class TestScModel:
    def test_all_memory_pairs_always(self):
        for first in (LOAD, STORE, RMW):
            for second in (LOAD, STORE, RMW):
                assert SC.requirement(first, second) is OrderRequirement.ALWAYS


class TestTsoModel:
    def test_store_load_exempt(self):
        assert TSO.requirement(STORE, LOAD) is OrderRequirement.NONE
        assert TSO.store_load_bypass

    def test_other_pairs_kept(self):
        assert TSO.requirement(LOAD, LOAD) is OrderRequirement.ALWAYS
        assert TSO.requirement(LOAD, STORE) is OrderRequirement.ALWAYS
        assert TSO.requirement(STORE, STORE) is OrderRequirement.ALWAYS

    def test_rmw_never_exempt(self):
        assert TSO.requirement(RMW, LOAD) is OrderRequirement.ALWAYS
        assert TSO.requirement(STORE, RMW) is OrderRequirement.ALWAYS

    def test_naive_tso_has_no_bypass(self):
        assert not NAIVE_TSO.store_load_bypass
        assert NAIVE_TSO.requirement(STORE, LOAD) is OrderRequirement.NONE


class TestPsoModel:
    def test_store_store_same_address_only(self):
        assert PSO.requirement(STORE, STORE_OTHER) is OrderRequirement.SAME_ADDRESS
        assert PSO.requirement(LOAD, STORE) is OrderRequirement.ALWAYS
        assert PSO.store_load_bypass


class TestRegistry:
    def test_known_models(self):
        names = available_models()
        for expected in ("sc", "tso", "naive-tso", "pso", "weak", "weak-spec", "weak-corr"):
            assert expected in names

    def test_get_model(self):
        assert get_model("weak") is WEAK
        with pytest.raises(ReproError):
            get_model("rvwmo")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ReproError):
            register_model(WEAK)

    def test_register_custom_model(self):
        from repro.models import registry

        custom = MemoryModel("test-custom", ReorderingTable({}))
        register_model(custom)
        try:
            assert get_model("test-custom") is custom
        finally:
            # Leaving the model registered would couple later tests (and
            # model-count assertions) to this one's execution order.
            registry._MODELS.pop("test-custom", None)


class TestSpeculativeVariant:
    def test_speculative_helper(self):
        spec = speculative(WEAK)
        assert spec.speculative_aliasing
        assert spec.name == "weak-spec"
        assert speculative(WEAK_SPEC) is WEAK_SPEC

    def test_weak_corr_strengthens_load_load(self):
        assert WEAK_CORR.requirement(LOAD, LOAD) is OrderRequirement.SAME_ADDRESS

    def test_str_mentions_flags(self):
        assert "bypass" in str(TSO)
        assert "speculative" in str(WEAK_SPEC)
