"""Targeted tests for code paths the themed suites do not reach."""

import pytest

from repro.core.enumerate import enumerate_behaviors
from repro.core.execution import Execution
from repro.errors import GraphError, ReproError
from repro.experiments.base import (
    Claim,
    executions_where,
    node_at,
    register_projection,
)
from repro.isa.dsl import ProgramBuilder
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.tm import AtomicBlock, block_units



class TestExperimentHelpers:
    def test_node_at_unknown_position(self, sb_program, weak):
        execution = enumerate_behaviors(sb_program, weak).executions[0]
        assert node_at(execution, "P0", 0).index == 0
        with pytest.raises(ReproError):
            node_at(execution, "P0", 99)

    def test_executions_where_no_match(self, sb_program, weak):
        result = enumerate_behaviors(sb_program, weak)
        assert executions_where(result, r1=42) == []

    def test_register_projection_missing_register(self, sb_program, weak):
        result = enumerate_behaviors(sb_program, weak)
        projected = register_projection(result, ("r1", "r_nonexistent"))
        assert all(row[1] is None for row in projected)

    def test_claim_str(self):
        claim = Claim("it works", 1, 1)
        assert "PASS" in str(claim)


class TestExecutionApis:
    def test_memory_finals_with_race(self):
        builder = ProgramBuilder("race")
        builder.thread("A").store("x", 1)
        builder.thread("B").store("x", 2)
        (execution,) = enumerate_behaviors(builder.build(), get_model("weak")).executions
        finals = execution.memory_finals()
        assert set(finals["x"]) == {1, 2}

    def test_memory_finals_untouched_location(self):
        builder = ProgramBuilder("quiet")
        builder.init("x", 9)
        builder.thread("T").load("r1", "x")
        (execution,) = enumerate_behaviors(builder.build(), get_model("sc")).executions
        assert execution.memory_finals()["x"] == (9,)

    def test_describe_mentions_progress(self, sb_program, weak):
        execution = Execution.initial(sb_program, weak)
        assert "in progress" in execution.describe()
        done = enumerate_behaviors(sb_program, weak).executions[0]
        assert "completed" in done.describe()

    def test_resolve_load_guards(self, sb_program, weak):
        execution = Execution.initial(sb_program, weak)
        load = execution.eligible_loads()[0]
        store_nid = execution.init_nodes[load.addr]
        execution.resolve_load(load.nid, store_nid)
        with pytest.raises(GraphError):
            execution.resolve_load(load.nid, store_nid)  # already resolved

    def test_resolve_load_rejects_non_store(self, sb_program, weak):
        execution = Execution.initial(sb_program, weak)
        loads = execution.eligible_loads()
        with pytest.raises(GraphError):
            execution.resolve_load(loads[0].nid, loads[1].nid)


class TestGraphDescribe:
    def test_describe_lists_nodes_and_edges(self, sb_program, weak):
        execution = enumerate_behaviors(sb_program, weak).executions[0]
        text = execution.graph.describe()
        assert "ExecutionGraph:" in text
        assert "->" in text

    def test_verify_consistency_on_real_graph(self, sb_program, weak):
        for execution in enumerate_behaviors(sb_program, weak).executions:
            execution.graph.verify_consistency()


class TestTmBlockUnits:
    def test_units_partition_memory_nodes(self):
        builder = ProgramBuilder("tm")
        thread = builder.thread("T")
        thread.load("r1", "c")
        thread.add("r2", "r1", 1)
        thread.store("c", "r2")
        (execution,) = enumerate_behaviors(builder.build(), get_model("sc")).executions
        units = block_units(execution, (AtomicBlock("T", 0, 3),))
        memory_nids = {
            node.nid for node in execution.graph.nodes if node.is_memory
        }
        flattened = [nid for unit in units for nid in unit]
        assert sorted(flattened) == sorted(memory_nids)
        block_unit = max(units, key=len)
        assert len(block_unit) == 2  # the load and the store; ALU excluded


class TestLitmusVerdictApi:
    def test_unexpected_verdict_reporting(self):
        from repro.litmus.runner import run_litmus
        from repro.litmus.test import LitmusTest

        base = get_test("SB")
        contrarian = LitmusTest(
            name="SB-contrarian",
            program=base.program,
            condition=base.condition,
            expected={"weak": False},  # wrong on purpose
        )
        verdict = run_litmus(contrarian, "weak")
        assert verdict.matches_expectation is False
        assert "MISMATCH" in verdict.summary()

    def test_no_expectation_is_none(self):
        from repro.litmus.runner import run_litmus
        from repro.litmus.test import LitmusTest

        base = get_test("SB")
        silent = LitmusTest("SB-noexp", base.program, base.condition)
        assert run_litmus(silent, "weak").matches_expectation is None


class TestOperationalStateHelpers:
    def test_rmw_apply_failed_cas(self):
        from repro.isa.instructions import Rmw, RmwKind
        from repro.isa.operands import Const, Reg
        from repro.operational.state import ArchThreadState, rmw_apply

        instruction = Rmw(Reg("r1"), Const("l"), RmwKind.CAS, (Const(0), Const(1)))
        state, stored = rmw_apply(ArchThreadState(), instruction, old=5)
        assert stored is None
        assert state.read(Reg("r1")) == 5
        assert state.pc == 1

    def test_resolve_address_type_error(self):
        from repro.errors import ExecutionError
        from repro.isa.operands import Const
        from repro.operational.state import ArchThreadState, resolve_address

        with pytest.raises(ExecutionError):
            resolve_address(ArchThreadState(), Const(42))


class TestTraceProjectionDetails:
    def test_trace_from_execution_includes_fences(self):
        from repro.analysis.tracecheck import TraceOpKind, trace_from_execution

        program = get_test("SB+fences").program
        execution = enumerate_behaviors(program, get_model("weak")).executions[0]
        trace = trace_from_execution(execution)
        kinds = [op.kind for _, ops in trace.threads for op in ops]
        assert TraceOpKind.FENCE in kinds

    def test_trace_initial_memory_carried(self):
        from repro.analysis.tracecheck import trace_from_execution

        builder = ProgramBuilder("init")
        builder.init("x", 7)
        builder.thread("T").load("r1", "x")
        execution = enumerate_behaviors(builder.build(), get_model("sc")).executions[0]
        trace = trace_from_execution(execution)
        assert trace.initial == {"x": 7}
