"""Edge-case tests consolidating odd corners across modules."""

import pytest

from repro.core.enumerate import enumerate_behaviors
from repro.core.serialization import all_serializations, find_serialization
from repro.isa.assembler import assemble_program, parse_instruction
from repro.isa.dsl import ProgramBuilder
from repro.litmus.conditions import parse_condition
from repro.litmus.runner import run_litmus
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model


class TestRmwSerialization:
    def test_rmw_chain_has_single_order(self):
        """Two fetch-adds to one location serialize in exactly two orders,
        each fully determined by who read the init value."""
        builder = ProgramBuilder("ff")
        builder.thread("A").fetch_add("r1", "c", 1)
        builder.thread("B").fetch_add("r2", "c", 1)
        result = enumerate_behaviors(builder.build(), get_model("weak"))
        assert len(result) == 2
        for execution in result.executions:
            orders = all_serializations(execution)
            assert len(orders) == 1  # init, then the two RMWs in one order

    def test_failed_cas_serializes_as_pure_read(self):
        builder = ProgramBuilder("fc")
        builder.init("l", 5)
        builder.thread("A").cas("r1", "l", 0, 1)  # fails: l == 5
        (execution,) = enumerate_behaviors(builder.build(), get_model("sc")).executions
        node = next(n for n in execution.graph.nodes if n.reads_memory)
        assert not node.writes  # the failed CAS made nothing visible
        assert find_serialization(execution) is not None
        assert execution.final_registers()[("A", "r1")] == 5


class TestConditionCorners:
    def test_or_condition_counts_pairs(self):
        test = LitmusTest(
            name="or-test",
            program=_sb(),
            condition=parse_condition("exists (P0:r1=0 \\/ P1:r2=0)"),
        )
        verdict = run_litmus(test, "sc")
        assert verdict.holds
        assert 0 < verdict.satisfied_pairs < verdict.total_pairs

    def test_not_condition(self):
        test = LitmusTest(
            name="not-test",
            program=_sb(),
            condition=parse_condition("forall not (P0:r1=0 /\\ P1:r2=0)"),
        )
        assert run_litmus(test, "sc").holds
        assert not run_litmus(test, "weak").holds

    def test_memory_atom_on_unwritten_location(self):
        test = LitmusTest(
            name="mem-test",
            program=_sb(),
            condition=parse_condition("forall ([x]=1 \\/ [x]=0)"),
        )
        assert run_litmus(test, "weak").holds

    def test_mixed_register_and_memory(self):
        test = LitmusTest(
            name="mixed",
            program=_sb(),
            condition=parse_condition("exists (P0:r1=1 /\\ [y]=1)"),
        )
        assert run_litmus(test, "sc").holds


class TestAssemblerCorners:
    def test_whitespace_tolerance(self):
        program = assemble_program("thread T\n   S   x ,  1 \n  r1   =  L   x\n")
        assert program.instruction_count() == 2

    def test_case_insensitive_keywords(self):
        program = assemble_program("THREAD T\n  S x, 1\n")
        assert program.threads[0].name == "T"

    def test_fence_case(self):
        from repro.isa.instructions import Fence

        assert parse_instruction("FENCE".lower()) == Fence()

    def test_negative_store_value(self):
        from repro.isa.instructions import Store
        from repro.isa.operands import Const

        assert parse_instruction("S x, -5") == Store(Const("x"), Const(-5))

    def test_acq_on_store_is_error(self):
        from repro.errors import AssemblerError

        with pytest.raises(AssemblerError):
            parse_instruction("S.acq x, 1")


class TestSelfCommunication:
    def test_thread_reading_own_store_chain(self):
        builder = ProgramBuilder("self")
        thread = builder.thread("T")
        thread.store("x", 1)
        thread.load("r1", "x")
        thread.store("x", "r1")
        thread.load("r2", "x")
        for model_name in ("sc", "tso", "weak"):
            result = enumerate_behaviors(builder.build(), get_model(model_name))
            assert len(result) == 1, model_name
            registers = result.executions[0].final_registers()
            assert registers[("T", "r1")] == 1
            assert registers[("T", "r2")] == 1

    def test_store_value_through_three_registers(self):
        builder = ProgramBuilder("chain3")
        thread = builder.thread("T")
        thread.mov("r1", 7)
        thread.mov("r2", "r1")
        thread.mov("r3", "r2")
        thread.store("x", "r3")
        thread.load("r4", "x")
        (execution,) = enumerate_behaviors(builder.build(), get_model("weak")).executions
        assert execution.final_registers()[("T", "r4")] == 7


class TestSingleThreadDeterminism:
    """Section 2: 'this ensures that single-threaded execution will be
    deterministic' — every model, every single-threaded program, one
    behavior."""

    @pytest.mark.parametrize("model_name", ["sc", "tso", "pso", "weak", "weak-corr"])
    def test_deterministic(self, model_name):
        builder = ProgramBuilder("det")
        thread = builder.thread("T")
        thread.store("x", 1)
        thread.store("y", 2)
        thread.load("r1", "x")
        thread.store("x", 3)
        thread.load("r2", "x")
        thread.load("r3", "y")
        result = enumerate_behaviors(builder.build(), get_model(model_name))
        assert len(result) == 1
        registers = result.executions[0].final_registers()
        assert registers[("T", "r1")] == 1
        assert registers[("T", "r2")] == 3
        assert registers[("T", "r3")] == 2


def _sb():
    builder = ProgramBuilder("SB")
    p0 = builder.thread("P0")
    p0.store("x", 1)
    p0.load("r1", "y")
    p1 = builder.thread("P1")
    p1.store("y", 1)
    p1.load("r2", "x")
    return builder.build()
