"""Integration: axiomatic enumeration == operational machines.

This is the repository's strongest correctness argument: on every
program in the litmus library, the reordering-table + Store Atomicity
formulation produces exactly the same final-register outcomes as the
classic hardware-style machines.
"""

import pytest

from repro.core.enumerate import ParallelEnumerationConfig, enumerate_behaviors
from repro.litmus.library import all_tests
from repro.models.registry import get_model
from repro.operational.sc import run_sc
from repro.operational.storebuffer import run_pso, run_tso

_TESTS = all_tests()
_PARALLEL = ParallelEnumerationConfig(workers=2)


@pytest.mark.parametrize("test", _TESTS, ids=[t.name for t in _TESTS])
def test_sc_equivalence(test):
    axiomatic = enumerate_behaviors(test.program, get_model("sc")).register_outcomes()
    assert axiomatic == run_sc(test.program).outcomes


@pytest.mark.parametrize("test", _TESTS, ids=[t.name for t in _TESTS])
def test_tso_equivalence(test):
    axiomatic = enumerate_behaviors(test.program, get_model("tso")).register_outcomes()
    assert axiomatic == run_tso(test.program).outcomes


@pytest.mark.parametrize("test", _TESTS, ids=[t.name for t in _TESTS])
def test_pso_equivalence(test):
    axiomatic = enumerate_behaviors(test.program, get_model("pso")).register_outcomes()
    assert axiomatic == run_pso(test.program).outcomes


@pytest.mark.parametrize("test", _TESTS, ids=[t.name for t in _TESTS])
def test_parallel_engine_vs_operational(test):
    """The PR-4 parallel engine agrees with the *operational* machines
    directly (not just with the sequential enumerator): sharding the
    search must not lose or invent hardware-observable outcomes."""
    for model_name, machine in (("sc", run_sc), ("tso", run_tso), ("pso", run_pso)):
        parallel = enumerate_behaviors(
            test.program, get_model(model_name), parallel=_PARALLEL
        ).register_outcomes()
        assert parallel == machine(test.program).outcomes, model_name


@pytest.mark.parametrize("test", _TESTS, ids=[t.name for t in _TESTS])
def test_model_inclusion_chain(test):
    """sc ⊆ tso ⊆ pso ⊆ weak on outcome sets."""
    outcomes = {
        name: enumerate_behaviors(test.program, get_model(name)).register_outcomes()
        for name in ("sc", "tso", "pso", "weak")
    }
    assert outcomes["sc"] <= outcomes["tso"] <= outcomes["pso"] <= outcomes["weak"]
