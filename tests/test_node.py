"""Unit tests for dynamic nodes and the error hierarchy."""


from repro import errors
from repro.core.node import INIT_TID, Node
from repro.isa.instructions import Load, OpClass, Store
from repro.isa.operands import Const, Reg


class TestNode:
    def test_init_node_properties(self):
        node = Node(
            nid=0,
            tid=INIT_TID,
            index=0,
            instruction=None,
            op_class=OpClass.STORE,
            executed=True,
            writes=True,
            addr="x",
            stored=0,
        )
        assert node.is_init
        assert node.is_visible_store
        assert "init" in node.describe()

    def test_memory_classification(self):
        load = Node(0, 0, 0, Load(Reg("r1"), Const("x")), OpClass.LOAD)
        store = Node(1, 0, 1, Store(Const("x"), Const(1)), OpClass.STORE)
        rmw = Node(2, 0, 2, None, OpClass.RMW)
        assert load.reads_memory and not load.writes_memory
        assert store.writes_memory and not store.reads_memory
        assert rmw.reads_memory and rmw.writes_memory

    def test_visible_store_requires_execution_and_write(self):
        store = Node(0, 0, 0, Store(Const("x"), Const(1)), OpClass.STORE)
        assert not store.is_visible_store
        store.executed = True
        assert not store.is_visible_store  # writes flag not yet set
        store.writes = True
        assert store.is_visible_store

    def test_clone_independent(self):
        node = Node(0, 0, 0, Load(Reg("r1"), Const("x")), OpClass.LOAD)
        clone = node.clone()
        clone.executed = True
        clone.value = 7
        assert not node.executed and node.value is None

    def test_describe_unresolved_marker(self):
        node = Node(0, 0, 0, Load(Reg("r1"), Const("x")), OpClass.LOAD)
        assert "[unresolved]" in node.describe()
        node.executed = True
        node.value = 3
        assert "[unresolved]" not in node.describe()
        assert "val=3" in node.describe()


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "ProgramError",
            "AssemblerError",
            "ExecutionError",
            "GraphError",
            "CycleError",
            "AtomicityViolation",
            "SerializationError",
            "EnumerationError",
            "ConditionError",
            "CoherenceError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_cycle_error_carries_endpoints(self):
        error = errors.CycleError(3, 7)
        assert error.source == 3 and error.target == 7
        assert "3" in str(error) and "7" in str(error)

    def test_assembler_error_line_numbers(self):
        error = errors.AssemblerError("bad", line_number=12)
        assert "line 12" in str(error)
        assert errors.AssemblerError("bad").line_number is None
