"""Tests for the transactional-memory extension."""

import pytest

from repro.errors import ProgramError
from repro.core.enumerate import enumerate_behaviors
from repro.experiments.tm_exp import (
    COUNTER_BLOCKS,
    SNAPSHOT_BLOCKS,
    build_counter,
    build_snapshot,
)
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model
from repro.tm import AtomicBlock, check_blocks, enumerate_transactional, transactional_witness


class TestBlockValidation:
    def test_empty_block_rejected(self):
        with pytest.raises(ProgramError):
            AtomicBlock("A", 2, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ProgramError):
            check_blocks(build_counter(), (AtomicBlock("A", 0, 99),))

    def test_overlap_rejected(self):
        with pytest.raises(ProgramError):
            check_blocks(
                build_counter(), (AtomicBlock("A", 0, 2), AtomicBlock("A", 1, 3))
            )

    def test_branch_inside_rejected(self):
        builder = ProgramBuilder("branchy")
        thread = builder.thread("T")
        thread.load("r1", "x")
        thread.beqz("r1", "out")
        thread.store("y", 1)
        thread.label("out")
        with pytest.raises(ProgramError):
            check_blocks(builder.build(), (AtomicBlock("T", 0, 3),))


class TestGuards:
    def test_bypass_models_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            enumerate_transactional(build_counter(), COUNTER_BLOCKS, "tso")


class TestCounter:
    def test_lost_update_without_blocks(self):
        result = enumerate_behaviors(build_counter(), get_model("sc"))
        finals = set()
        for execution in result.executions:
            finals |= set(execution.memory_finals()["c"])
        assert finals == {1, 2}

    @pytest.mark.parametrize("model_name", ["sc", "weak"])
    def test_blocks_forbid_lost_update(self, model_name):
        transactional = enumerate_transactional(
            build_counter(), COUNTER_BLOCKS, model_name
        )
        assert transactional.rejected > 0
        for execution in transactional.executions:
            assert execution.memory_finals()["c"] == (2,)

    def test_single_block_still_allows_interleaving_effects(self):
        """Protecting only one increment leaves the race."""
        transactional = enumerate_transactional(
            build_counter(), (AtomicBlock("A", 0, 3),), "sc"
        )
        finals = set()
        for execution in transactional.executions:
            finals |= set(execution.memory_finals()["c"])
        assert 1 in finals


class TestSnapshot:
    def test_no_torn_reads(self):
        transactional = enumerate_transactional(
            build_snapshot(), SNAPSHOT_BLOCKS, "weak"
        )
        for execution in transactional.executions:
            registers = execution.final_registers()
            assert (registers[("R", "r1")], registers[("R", "r2")]) != (1, 0)

    def test_torn_read_exists_without_blocks(self):
        result = enumerate_behaviors(build_snapshot(), get_model("weak"))
        torn = any(
            execution.final_registers()[("R", "r1")] == 1
            and execution.final_registers()[("R", "r2")] == 0
            for execution in result.executions
        )
        assert torn

    def test_reader_can_also_see_half_old_half_new_reversed(self):
        """(r1=0, r2=1) is a valid snapshot? No — the writer's block is
        atomic, so the reader sees all-old or all-new."""
        transactional = enumerate_transactional(
            build_snapshot(), SNAPSHOT_BLOCKS, "weak"
        )
        pairs = {
            (
                execution.final_registers()[("R", "r1")],
                execution.final_registers()[("R", "r2")],
            )
            for execution in transactional.executions
        }
        assert pairs == {(0, 0), (1, 1)}


class TestWitness:
    def test_witness_order_keeps_blocks_contiguous(self):
        transactional = enumerate_transactional(build_counter(), COUNTER_BLOCKS, "sc")
        for execution in transactional.executions:
            witness = transactional_witness(execution, COUNTER_BLOCKS)
            assert witness is not None
            positions = {nid: i for i, nid in enumerate(witness)}
            for block in COUNTER_BLOCKS:
                tid = execution.program.thread_index(block.thread)
                members = sorted(
                    positions[node.nid]
                    for node in execution.graph.nodes
                    if node.tid == tid
                    and block.start <= node.index < block.end
                    and node.is_memory
                )
                assert members == list(range(members[0], members[0] + len(members)))

    def test_no_blocks_reduces_to_plain_serialization(self):
        result = enumerate_behaviors(build_counter(), get_model("sc"))
        for execution in result.executions:
            assert transactional_witness(execution, ()) is not None
