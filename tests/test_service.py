"""Tests for the analysis service: WAL durability, the job store and
recovery, rate limiting, backpressure, the worker pool's checkpointed
slices, idempotent submission, and the HTTP server end to end."""

import asyncio
import json
import threading

import pytest

from repro.core.enumerate import CancellationToken, enumerate_behaviors
from repro.errors import ServiceError, WALError
from repro.isa.assembler import assemble
from repro.models.registry import get_model
from repro.service.jobs import (
    JobState,
    JobStore,
    canonical_result,
    job_key,
    limits_from_dict,
)
from repro.service.pool import WorkerPool
from repro.service.ratelimit import RateLimiter, TokenBucket, retry_after_header
from repro.service.server import JobServer, ServiceConfig
from repro.service.client import ServiceClient
from repro.service.wal import WALRecord, WriteAheadLog, replay_wal

SB_SOURCE = """
test SB
init x=0 y=0

thread P0
    S x, 1
    r1 = L y

thread P1
    S y, 1
    r2 = L x
"""

HEAVY_SOURCE = """
test heavy3
init x=0 y=0 z=0

thread W
    S x, 1
    S y, 1

thread P
    r1 = L x
    r2 = L y
    S z, 1

thread Q
    r3 = L z
    r4 = L y
    r5 = L x
"""


# ----------------------------------------------------------------------
# WAL


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "jobs.wal", fsync=False)
        wal.append("submitted", "j1", {"model": "weak"})
        wal.append("state", "j1", {"state": "running"})
        wal.close()
        records = replay_wal(tmp_path / "jobs.wal")
        assert [r.event for r in records] == ["submitted", "state"]
        assert records[0].data == {"model": "weak"}
        assert [r.seq for r in records] == [1, 2]

    def test_missing_file_replays_empty(self, tmp_path):
        assert replay_wal(tmp_path / "absent.wal") == []

    def test_torn_tail_is_dropped(self, tmp_path):
        """A crash mid-append leaves a half-written last line; replay
        keeps every durable record and drops the torn one."""
        path = tmp_path / "jobs.wal"
        wal = WriteAheadLog(path, fsync=False)
        wal.append("submitted", "j1", {})
        wal.append("state", "j1", {"state": "running"})
        wal.close()
        blob = path.read_text()
        path.write_text(blob + blob.splitlines()[-1][: 20])  # torn record
        records = replay_wal(path)
        assert [r.event for r in records] == ["submitted", "state"]

    def test_corruption_mid_log_raises(self, tmp_path):
        path = tmp_path / "jobs.wal"
        wal = WriteAheadLog(path, fsync=False)
        wal.append("submitted", "j1", {})
        wal.append("state", "j1", {"state": "running"})
        wal.close()
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-5] + 'XXX"}'  # corrupt a non-tail record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WALError):
            replay_wal(path)

    def test_checksum_detects_bit_flip(self, tmp_path):
        path = tmp_path / "jobs.wal"
        wal = WriteAheadLog(path, fsync=False)
        wal.append("submitted", "j1", {"account": "alice"})
        wal.close()
        text = path.read_text().replace("alice", "mallory")
        path.write_text(text)
        assert replay_wal(path) == []  # sole (tail) record dropped

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "jobs.wal"
        wal = WriteAheadLog(path, fsync=False)
        wal.append("submitted", "j1", {})
        wal.close()
        wal2 = WriteAheadLog(path, fsync=False)
        record = wal2.append("state", "j1", {"state": "running"})
        wal2.close()
        assert record.seq == 2
        assert [r.seq for r in replay_wal(path)] == [1, 2]

    def test_rewrite_compacts_atomically(self, tmp_path):
        path = tmp_path / "jobs.wal"
        wal = WriteAheadLog(path, fsync=False)
        for i in range(10):
            wal.append("state", "j1", {"state": "running", "i": i})
        wal.rewrite([WALRecord(seq=1, event="snapshot", job_id="j1", data={})])
        wal.append("state", "j1", {"state": "completed"})
        wal.close()
        records = replay_wal(path)
        assert [r.event for r in records] == ["snapshot", "state"]


# ----------------------------------------------------------------------
# job identity + store


class TestJobKeys:
    def test_content_addressed_and_whitespace_insensitive(self):
        key = job_key(SB_SOURCE, "weak", {})
        indented = "\n".join("   " + line for line in SB_SOURCE.splitlines())
        assert job_key(indented, "weak", {}) == key

    def test_model_and_limits_change_the_key(self):
        base = job_key(SB_SOURCE, "weak", {})
        assert job_key(SB_SOURCE, "tso", {}) != base
        assert job_key(SB_SOURCE, "weak", {"max_behaviors": 10}) != base

    def test_limits_validation(self):
        assert limits_from_dict({"max_behaviors": 5}).max_behaviors == 5
        with pytest.raises(ServiceError) as info:
            limits_from_dict({"max_behaviours": 5})
        assert "unknown limits field" in str(info.value)


class TestJobStoreRecovery:
    def _store(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "jobs.wal", fsync=False)
        return JobStore(wal), wal

    def test_submit_is_durable_before_visible(self, tmp_path):
        store, wal = self._store(tmp_path)
        job = store.submit("alice", SB_SOURCE, "weak", {}, None, "SB")
        wal.close()
        records = replay_wal(tmp_path / "jobs.wal")
        assert records[0].event == "submitted"
        assert records[0].job_id == job.id

    def test_recovery_requeues_interrupted_jobs(self, tmp_path):
        store, wal = self._store(tmp_path)
        done = store.submit("a", SB_SOURCE, "weak", {}, None, "SB")
        store.transition(done.id, JobState.RUNNING)
        store.transition(
            done.id, JobState.COMPLETED, result={"executions": 4}, explored=9
        )
        running = store.submit("a", HEAVY_SOURCE, "weak", {}, None, "heavy3")
        store.transition(running.id, JobState.RUNNING, attempts=1)
        queued = store.submit("a", SB_SOURCE, "tso", {}, None, "SB")
        wal.close()

        records = replay_wal(tmp_path / "jobs.wal")
        wal2 = WriteAheadLog(tmp_path / "jobs.wal", fsync=False)
        recovered, requeue = JobStore.recover(wal2, records)
        wal2.close()
        assert requeue == [running.id, queued.id]  # submission order
        assert recovered.get(done.id).state is JobState.COMPLETED
        assert recovered.get(done.id).result == {"executions": 4}
        assert recovered.get(running.id).state is JobState.QUEUED
        assert recovered.get(running.id).attempts == 1  # attempts survive

    def test_compaction_preserves_state(self, tmp_path):
        store, wal = self._store(tmp_path)
        job = store.submit("a", SB_SOURCE, "weak", {}, None, "SB")
        store.transition(job.id, JobState.RUNNING)
        store.transition(job.id, JobState.COMPLETED, result={"executions": 4})
        store.compact()
        wal.close()
        records = replay_wal(tmp_path / "jobs.wal")
        assert [r.event for r in records] == ["snapshot"]
        wal2 = WriteAheadLog(tmp_path / "jobs.wal", fsync=False)
        recovered, requeue = JobStore.recover(wal2, records)
        wal2.close()
        assert requeue == []
        assert recovered.get(job.id).state is JobState.COMPLETED
        assert recovered.get(job.id).result == {"executions": 4}
        assert recovered.get(job.id).source == SB_SOURCE

    def test_terminal_retention_is_bounded(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "jobs.wal", fsync=False)
        store = JobStore(wal, completed_retention=2)
        ids = []
        for i in range(5):
            job = store.submit("a", SB_SOURCE + f"\n# v{i}\n", "weak", {}, None, "SB")
            store.transition(job.id, JobState.COMPLETED, result={})
            ids.append(job.id)
        wal.close()
        assert len(store.jobs) == 2
        assert store.get(ids[-1]) is not None
        assert store.get(ids[0]) is None


# ----------------------------------------------------------------------
# rate limiting


class TestRateLimiting:
    def test_bucket_allows_burst_then_throttles(self):
        bucket = TokenBucket(capacity=2, refill_rate=1.0, now=0.0)
        assert bucket.acquire(0.0) == (True, 0.0)
        assert bucket.acquire(0.0) == (True, 0.0)
        allowed, retry_after = bucket.acquire(0.0)
        assert not allowed
        assert retry_after == pytest.approx(1.0)

    def test_refill_is_deterministic(self):
        bucket = TokenBucket(capacity=2, refill_rate=0.5, now=0.0)
        bucket.acquire(0.0)
        bucket.acquire(0.0)
        allowed, retry_after = bucket.acquire(1.0)  # 0.5 tokens refilled
        assert not allowed
        assert retry_after == pytest.approx(1.0)  # (1 - 0.5) / 0.5
        assert bucket.acquire(2.0)[0] is True  # a full token by t=2

    def test_accounts_are_independent(self):
        clock = lambda: 0.0  # noqa: E731
        limiter = RateLimiter(capacity=1, refill_rate=1.0, clock=clock)
        assert limiter.check("alice")[0] is True
        assert limiter.check("alice")[0] is False
        assert limiter.check("bob")[0] is True

    def test_account_table_is_lru_bounded(self):
        limiter = RateLimiter(capacity=1, refill_rate=1.0, clock=lambda: 0.0, max_accounts=3)
        for i in range(50):
            limiter.check(f"account-{i}")
        assert limiter.accounts == 3

    def test_retry_after_header_rounds_up(self):
        assert retry_after_header(0.2) == "1"
        assert retry_after_header(1.0) == "1"
        assert retry_after_header(1.01) == "2"


# ----------------------------------------------------------------------
# worker pool


class TestWorkerPool:
    def test_inline_job_completes(self, tmp_path):
        pool = WorkerPool(workers=0, slice_behaviors=1000)
        outcome = pool.run_job(
            SB_SOURCE, "weak", {}, None, tmp_path / "sb.ckpt"
        )
        assert outcome.status == "completed"
        assert outcome.result["complete"] is True
        assert outcome.result["executions"] == 4

    def test_sliced_job_matches_direct_enumeration(self, tmp_path):
        """Many tiny checkpointed slices must produce the canonical
        result byte-identical to one uninterrupted run."""
        pool = WorkerPool(workers=0, slice_behaviors=25)
        progress: list[int] = []
        outcome = pool.run_job(
            HEAVY_SOURCE, "weak", {}, None, tmp_path / "h.ckpt",
            progress=progress.append,
        )
        assert outcome.status == "completed"
        assert len(progress) > 2  # it really ran in slices
        assert progress == sorted(progress)
        direct = enumerate_behaviors(
            assemble(HEAVY_SOURCE).program, get_model("weak")
        )
        assert json.dumps(outcome.result, sort_keys=True) == json.dumps(
            canonical_result(direct), sort_keys=True
        )
        assert not (tmp_path / "h.ckpt").exists()  # cleaned up when done

    def test_user_budget_yields_partial_result(self, tmp_path):
        pool = WorkerPool(workers=0, slice_behaviors=25)
        outcome = pool.run_job(
            HEAVY_SOURCE, "weak", {"max_behaviors": 60}, None, tmp_path / "h.ckpt"
        )
        assert outcome.status == "completed"
        assert outcome.result["complete"] is False
        assert outcome.result["reason"] == "behavior-budget"
        assert outcome.explored == 60

    def test_cancellation_between_slices(self, tmp_path):
        pool = WorkerPool(workers=0, slice_behaviors=10)
        token = CancellationToken()
        calls = []

        def cancel_after_two(explored):
            calls.append(explored)
            if len(calls) == 2:
                token.cancel()

        outcome = pool.run_job(
            HEAVY_SOURCE, "weak", {}, None, tmp_path / "h.ckpt",
            token=token, progress=cancel_after_two,
        )
        assert outcome.status == "cancelled"

    def test_deadline_with_injected_clock(self, tmp_path):
        fake = {"now": 0.0}
        pool = WorkerPool(workers=0, slice_behaviors=10, clock=lambda: fake["now"])
        def advance(explored):
            fake["now"] += 10.0
        outcome = pool.run_job(
            HEAVY_SOURCE, "weak", {}, 5.0, tmp_path / "h.ckpt", progress=advance
        )
        assert outcome.status == "failed"
        assert "deadline of 5.0s exceeded" in outcome.error


# ----------------------------------------------------------------------
# the HTTP server, end to end


class ServerThread:
    """Run a JobServer on a private event loop in a daemon thread."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("fsync", False)
        config_kwargs.setdefault("workers", 0)
        self.config = ServiceConfig(**config_kwargs)
        self.server: JobServer | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._main())
        self._loop.close()

    async def _main(self):
        self._stop = asyncio.Event()
        self.server = JobServer(self.config)
        await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._started.wait(timeout=10), "server failed to start"
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"


class TestJobServer:
    def test_submit_poll_complete(self, tmp_path):
        with ServerThread(wal_dir=tmp_path) as fixture:
            client = ServiceClient(fixture.url)
            job = client.submit(SB_SOURCE, model="weak")
            assert job["state"] in ("queued", "running")
            done = client.wait(job["id"], timeout=30)
            assert done["state"] == "completed"
            assert done["result"]["executions"] == 4
            direct = enumerate_behaviors(
                assemble(SB_SOURCE).program, get_model("weak")
            )
            assert json.dumps(done["result"], sort_keys=True) == json.dumps(
                canonical_result(direct), sort_keys=True
            )

    def test_idempotent_resubmission(self, tmp_path):
        with ServerThread(wal_dir=tmp_path) as fixture:
            client = ServiceClient(fixture.url)
            first = client.submit(SB_SOURCE, model="weak")
            client.wait(first["id"], timeout=30)
            again = client.submit("  " + SB_SOURCE, model="weak")
            assert again["id"] == first["id"]
            assert again["state"] == "completed"  # replayed, not re-queued

    def test_bad_requests_are_400(self, tmp_path):
        with ServerThread(wal_dir=tmp_path) as fixture:
            client = ServiceClient(fixture.url)
            with pytest.raises(ServiceError) as info:
                client.submit("not a program", model="weak")
            assert info.value.status == 400
            with pytest.raises(ServiceError) as info:
                client.submit(SB_SOURCE, model="no-such-model")
            assert info.value.status == 400
            with pytest.raises(ServiceError) as info:
                client.submit(SB_SOURCE, model="weak", limits={"bogus": 1})
            assert info.value.status == 400

    def test_unknown_job_is_404(self, tmp_path):
        with ServerThread(wal_dir=tmp_path) as fixture:
            with pytest.raises(ServiceError) as info:
                ServiceClient(fixture.url).status("feedfacedeadbeef")
            assert info.value.status == 404

    def test_rate_limit_is_deterministic_429(self, tmp_path):
        fake = {"now": 0.0}
        with ServerThread(
            wal_dir=tmp_path,
            rate_capacity=2,
            rate_refill=0.5,
            clock=lambda: fake["now"],
        ) as fixture:
            client = ServiceClient(fixture.url)
            client.submit(SB_SOURCE, model="weak", account="alice")
            client.submit(SB_SOURCE, model="tso", account="alice")
            with pytest.raises(ServiceError) as info:
                client.submit(SB_SOURCE, model="pso", account="alice")
            assert info.value.status == 429
            assert info.value.retry_after == 2.0  # ceil((1-0)/0.5)
            # another account is unaffected
            job = client.submit(SB_SOURCE, model="pso", account="bob")
            assert job["state"] in ("queued", "running", "completed")

    def test_full_queue_is_429_with_retry_after(self, tmp_path):
        with ServerThread(
            wal_dir=tmp_path, queue_limit=0, queue_retry_after=3.0
        ) as fixture:
            with pytest.raises(ServiceError) as info:
                ServiceClient(fixture.url).submit(SB_SOURCE, model="weak")
            assert info.value.status == 429
            assert info.value.retry_after == 3.0
            assert "queue is full" in str(info.value)

    def test_cancel_queued_job(self, tmp_path):
        with ServerThread(wal_dir=tmp_path, queue_limit=8) as fixture:
            client = ServiceClient(fixture.url)
            job = client.submit(HEAVY_SOURCE, model="weak")
            cancelled = client.cancel(job["id"])
            assert cancelled["state"] in ("cancelled", "running", "completed")
            final = client.wait(job["id"], timeout=30)
            assert final["state"] in ("cancelled", "completed")

    def test_health_endpoint(self, tmp_path):
        with ServerThread(wal_dir=tmp_path) as fixture:
            client = ServiceClient(fixture.url)
            health = client.health()
            assert health["status"] == "ok"
            assert "jobs" in health and "backlog" in health

    def test_restart_preserves_completed_results(self, tmp_path):
        with ServerThread(wal_dir=tmp_path) as fixture:
            client = ServiceClient(fixture.url)
            job = client.submit(SB_SOURCE, model="weak")
            done = client.wait(job["id"], timeout=30)
        with ServerThread(wal_dir=tmp_path) as fixture:
            after = ServiceClient(fixture.url).status(job["id"])
            assert after["state"] == "completed"
            assert after["result"] == done["result"]

    def test_restart_requeues_and_finishes_interrupted_job(self, tmp_path):
        """Graceful-stop variant of the kill -9 test: stop the server
        mid-job, restart on the same WAL dir, job completes with the
        canonical result."""
        with ServerThread(
            wal_dir=tmp_path, slice_behaviors=20, slice_delay=0.1
        ) as fixture:
            client = ServiceClient(fixture.url)
            job = client.submit(HEAVY_SOURCE, model="weak")
            # leave while the job is still in flight
        with ServerThread(wal_dir=tmp_path, slice_behaviors=1000) as fixture:
            client = ServiceClient(fixture.url)
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == "completed"
            direct = enumerate_behaviors(
                assemble(HEAVY_SOURCE).program, get_model("weak")
            )
            assert json.dumps(done["result"], sort_keys=True) == json.dumps(
                canonical_result(direct), sort_keys=True
            )
