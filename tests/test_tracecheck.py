"""Tests for the TSOtool-style trace checker."""

import pytest
from hypothesis import given, settings
from itertools import product

from repro.errors import ReproError
from repro.core.enumerate import enumerate_behaviors
from repro.analysis.tracecheck import (
    Trace,
    TraceOp,
    check_trace,
    trace_from_execution,
)
from repro.experiments.tracecheck_exp import double_fig5_trace, fig5_trace, sb_trace
from repro.isa.instructions import FenceKind
from repro.models.registry import get_model

from tests.conftest import build_mp, build_sb
from tests.test_properties import small_programs

S, L, F = TraceOp.store, TraceOp.load, TraceOp.fence


class TestBasics:
    def test_trivial_trace_accepted(self):
        trace = Trace((("T", (S("x", 1), L("x", 1))),))
        assert check_trace(trace, "sc").accepted

    def test_wrong_value_rejected(self):
        trace = Trace((("T", (S("x", 1), L("x", 9))),))
        assert not check_trace(trace, "sc").accepted

    def test_initial_memory_respected(self):
        trace = Trace((("T", (L("x", 7),)),), initial={"x": 7})
        assert check_trace(trace, "sc").accepted
        assert not check_trace(Trace((("T", (L("x", 7),)),))).accepted

    def test_assignment_reported(self):
        trace = sb_trace(1, 1)
        verdict = check_trace(trace, "sc")
        assert verdict.accepted
        assert verdict.assignment[("P0", 1)] == (1, 0)  # L y read P1's store
        assert verdict.assignment[("P1", 1)] == (0, 0)

    def test_init_source_reported(self):
        verdict = check_trace(sb_trace(0, 1), "sc")
        assert verdict.assignment[("P0", 1)] == "init"

    def test_bypass_model_rejected(self):
        with pytest.raises(ReproError):
            check_trace(sb_trace(0, 0), "tso")

    def test_bad_rules_rejected(self):
        with pytest.raises(ReproError):
            check_trace(sb_trace(0, 0), "sc", rules="abcd")

    def test_fence_kinds_respected(self):
        relaxed = Trace(
            (
                ("P0", (S("x", 1), F(FenceKind.STORE_LOAD), L("y", 0))),
                ("P1", (S("y", 1), F(FenceKind.STORE_LOAD), L("x", 0))),
            )
        )
        assert not check_trace(relaxed, "weak").accepted
        wrong_fence = Trace(
            (
                ("P0", (S("x", 1), F(FenceKind.LOAD_LOAD), L("y", 0))),
                ("P1", (S("y", 1), F(FenceKind.LOAD_LOAD), L("x", 0))),
            )
        )
        assert check_trace(wrong_fence, "weak").accepted


class TestModelDiscrimination:
    def test_sb_matrix(self):
        outcomes = enumerate_behaviors(build_sb(), get_model("sc")).register_outcomes()
        realizable = {
            (dict(o)[("P0", "r1")], dict(o)[("P1", "r2")]) for o in outcomes
        }
        for r1, r2 in product((0, 1), repeat=2):
            assert check_trace(sb_trace(r1, r2), "sc").accepted == (
                (r1, r2) in realizable
            )

    def test_mp_stale_read(self):
        stale = Trace(
            (
                ("P0", (S("x", 1), S("flag", 1))),
                ("P1", (L("flag", 1), L("x", 0))),
            )
        )
        assert not check_trace(stale, "sc").accepted
        assert check_trace(stale, "weak").accepted


class TestTsotoolGap:
    def test_single_fig5_no_gap(self):
        for l9 in (0, 1, 8):
            trace = fig5_trace(2, 4, 6, l9)
            assert (
                check_trace(trace, "weak", rules="ab").accepted
                == check_trace(trace, "weak", rules="abc").accepted
            )

    def test_double_fig5_gap(self):
        witness = double_fig5_trace()
        assert check_trace(witness, "weak", rules="ab").accepted
        assert not check_trace(witness, "weak", rules="abc").accepted

    def test_ab_acceptance_superset_of_abc(self):
        for l3, l5, l9 in product((0, 2, 4), (0, 2, 4), (0, 1, 8)):
            trace = fig5_trace(l3, l5, 6, l9)
            if check_trace(trace, "weak", rules="abc").accepted:
                assert check_trace(trace, "weak", rules="ab").accepted


class TestSoundnessAgainstEnumerator:
    @pytest.mark.parametrize("model_name", ["sc", "weak", "weak-corr"])
    def test_projected_executions_accepted(self, model_name):
        """Every enumerated execution's trace must be accepted (soundness)."""
        for program in (build_sb(), build_mp()):
            result = enumerate_behaviors(program, get_model(model_name))
            for execution in result.executions:
                trace = trace_from_execution(execution)
                assert check_trace(trace, model_name).accepted

    @given(small_programs())
    @settings(max_examples=20, deadline=None)
    def test_property_acceptance_iff_enumerable(self, program):
        """Completeness on random programs without RMWs: the checker accepts
        a projected trace iff it came from a real behavior; perturbed
        traces are accepted iff the perturbation is also a behavior."""
        from repro.isa.instructions import Rmw

        if any(
            isinstance(instruction, Rmw)
            for thread in program.threads
            for instruction in thread.code
        ):
            return  # the trace format does not model RMWs
        result = enumerate_behaviors(program, get_model("weak"))
        for execution in result.executions[:4]:
            trace = trace_from_execution(execution)
            assert check_trace(trace, "weak").accepted
