"""The differential fuzzing subsystem: generator, oracles, shrinker,
campaign driver, and the mutation-kill proof of effectiveness."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.instructions import Store
from repro.isa.operands import Const
from repro.testing.corpus import CorpusEntry, load_entry, save_entry
from repro.testing.fuzz import (
    MutantKill,
    campaign_items,
    fuzz_one,
    hunt_mutant,
    run_campaign,
)
from repro.testing.fuzzgen import (
    MIXED,
    PROFILES,
    generate_program,
    get_profile,
    iter_programs,
)
from repro.testing.mutants import MUTANTS, get_mutant
from repro.testing.oracles import ORACLES, get_oracle, run_oracles
from repro.testing.shrink import shrink

# ---------------------------------------------------------------------------
# generator


class TestGenerator:
    def test_deterministic(self):
        for name, profile in PROFILES.items():
            assert generate_program(7, profile) == generate_program(7, profile), name

    def test_seeds_differ(self):
        profile = get_profile("default")
        programs = {str(generate_program(seed, profile)) for seed in range(8)}
        assert len(programs) >= 6, "distinct seeds should give distinct programs"

    def test_profiles_differ(self):
        assert generate_program(3, get_profile("relaxed")) != generate_program(
            3, get_profile("branchy")
        )

    def test_programs_round_trip_the_assembler(self):
        for _seed, _name, program in iter_programs(5, 12):
            assert assemble(disassemble(program)).program == program

    def test_mixed_stream_covers_every_profile(self):
        names = {name for _seed, name, _program in iter_programs(0, len(PROFILES))}
        assert names == set(PROFILES)

    def test_profiles_deliver_their_features(self):
        from repro.isa.instructions import Branch, Load, Rmw
        from repro.isa.operands import Reg

        def instructions(profile_name, count=10):
            for seed in range(count):
                program = generate_program(seed, get_profile(profile_name))
                for thread in program.threads:
                    yield from thread.code

        assert any(isinstance(i, Rmw) for i in instructions("rmw"))
        assert any(isinstance(i, Branch) for i in instructions("branchy"))
        assert any(
            isinstance(i, Load) and isinstance(i.addr, Reg)
            for i in instructions("dataflow")
        )

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError):
            get_profile("nonexistent")


# ---------------------------------------------------------------------------
# oracles


class TestOracles:
    def test_registry_lookup(self):
        assert get_oracle("axiomatic-vs-sc").name == "axiomatic-vs-sc"
        with pytest.raises(ReproError):
            get_oracle("axiomatic-vs-vapor")

    def test_clean_on_known_good_program(self, sb_program):
        discrepancies, skipped = run_oracles(sb_program)
        assert not discrepancies
        # SB is branch-free, so even the dataflow oracle participates.
        assert "axiomatic-vs-dataflow" not in skipped

    def test_branchy_programs_skip_dataflow_oracle(self):
        program = generate_program(4, get_profile("branchy"))
        assert program.has_branches()
        _discrepancies, skipped = run_oracles(program)
        assert "axiomatic-vs-dataflow" in skipped

    def test_every_oracle_fires_somewhere(self):
        """Across a small campaign, each oracle participates (runs
        un-skipped) on at least one program."""
        participated = set()
        for _seed, _name, program in iter_programs(0, len(PROFILES)):
            _discrepancies, skipped = run_oracles(program)
            participated |= {o.name for o in ORACLES} - set(skipped)
        assert participated == {o.name for o in ORACLES}


# ---------------------------------------------------------------------------
# shrinker


class TestShrink:
    def test_shrinks_to_the_failing_core(self, mp_program):
        # "Still fails" := still contains a store to x.  The minimizer
        # should strip everything else.
        def has_store_to_x(program):
            return any(
                isinstance(i, Store) and i.addr == Const("x")
                for t in program.threads
                for i in t.code
            )

        result = shrink(mp_program, has_store_to_x)
        assert result.instructions == 1
        assert has_store_to_x(result.program)
        assert result.original_instructions == 4

    def test_non_failing_program_returned_unchanged(self, sb_program):
        result = shrink(sb_program, lambda program: False)
        assert result.program == sb_program
        assert result.reductions_applied == 0

    def test_raising_predicate_counts_as_not_failing(self, sb_program):
        def explodes(program):
            if program.instruction_count() < 4:
                raise RuntimeError("boom")
            return True

        result = shrink(sb_program, explodes)
        # Every reduction below 4 instructions raises, so the minimum
        # reachable size is 4 — and shrink never propagates the error.
        assert result.instructions == 4

    def test_branchy_program_shrinks_with_labels_intact(self):
        program = generate_program(11, get_profile("branchy"))
        result = shrink(program, lambda p: p.instruction_count() >= 2)
        assert result.instructions == 2
        # The shrunk program is still well-formed and enumerable.
        run_oracles(result.program, names=("axiomatic-vs-sc",))


# ---------------------------------------------------------------------------
# campaign driver


class TestCampaign:
    def test_deterministic_verdicts(self):
        first = run_campaign(seed=3, budget=5, do_shrink=False)
        second = run_campaign(seed=3, budget=5, do_shrink=False)
        assert first.verdicts == second.verdicts
        assert first.clean

    def test_items_are_chunking_independent(self):
        whole = campaign_items(9, 6)
        assert whole[:3] == campaign_items(9, 3)

    def test_fuzz_one_is_picklable_unit(self):
        import pickle

        item = campaign_items(1, 1)[0]
        verdict = fuzz_one(item)
        assert pickle.loads(pickle.dumps(verdict)) == verdict

    def test_summary_mentions_failures(self):
        report = run_campaign(seed=3, budget=2, do_shrink=False)
        text = report.summary()
        assert "programs checked : 2" in text
        assert "discrepancies    : 0" in text


# ---------------------------------------------------------------------------
# mutation kill: the subsystem must catch real bugs

_KILL_BUDGET = 20


@pytest.mark.parametrize("mutant", MUTANTS, ids=[m.name for m in MUTANTS])
def test_mutant_is_killed_and_minimized(mutant, tmp_path):
    kill: MutantKill = hunt_mutant(
        mutant, seed=0, budget=_KILL_BUDGET, corpus_dir=tmp_path
    )
    assert kill.detected, f"{mutant.name} survived {_KILL_BUDGET} programs"
    assert kill.reproducer_instructions is not None
    assert kill.reproducer_instructions <= 8
    assert kill.corpus_path is not None and kill.corpus_path.exists()
    assert kill.replay_fails_under_mutant, "banked reproducer must replay"
    assert kill.healthy_tree_clean, "reproducer must pass on the healthy tree"


def test_mutant_patches_are_reversible(sb_program):
    baseline, _ = run_oracles(sb_program, names=("axiomatic-vs-sc",))
    mutant = get_mutant("sc-load-load-relaxed")
    with mutant.applied():
        pass
    after, _ = run_oracles(sb_program, names=("axiomatic-vs-sc",))
    assert baseline == after == []


# ---------------------------------------------------------------------------
# corpus format


class TestCorpusFormat:
    def test_save_load_round_trip(self, tmp_path, sb_program):
        entry = CorpusEntry(
            program=sb_program,
            seed=42,
            profile="default",
            oracle="axiomatic-vs-sc",
            note="hand-made",
        )
        path = save_entry(entry, tmp_path)
        loaded = load_entry(path)
        assert loaded.program == sb_program
        assert (loaded.seed, loaded.profile, loaded.oracle, loaded.note) == (
            42,
            "default",
            "axiomatic-vs-sc",
            "hand-made",
        )

    def test_identical_entries_dedupe(self, tmp_path, sb_program):
        entry = CorpusEntry(program=sb_program, seed=1)
        assert save_entry(entry, tmp_path) == save_entry(entry, tmp_path)
        assert len(list(tmp_path.glob("*.litmus"))) == 1

    def test_name_collisions_get_suffixes(self, tmp_path, sb_program, mp_program):
        renamed = CorpusEntry(
            program=type(mp_program)(mp_program.threads, {}, sb_program.name)
        )
        first = save_entry(CorpusEntry(program=sb_program), tmp_path)
        second = save_entry(renamed, tmp_path)
        assert first != second
        assert len(list(tmp_path.glob("*.litmus"))) == 2

    def test_unknown_header_key_rejected(self, tmp_path):
        bad = tmp_path / "bad.litmus"
        bad.write_text("# fuzz-flavor: vanilla\ntest t\n\nthread P0\n    S x, 1\n")
        with pytest.raises(ReproError):
            load_entry(bad)


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            cwd=Path(__file__).parent.parent,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_fuzz_smoke_is_deterministic(self):
        first = self._run("fuzz", "--budget", "4", "--seed", "9")
        second = self._run("fuzz", "--budget", "4", "--seed", "9")
        assert first.returncode == 0, first.stderr
        assert first.stdout == second.stdout

    def test_list_flags(self):
        oracles = self._run("fuzz", "--list-oracles")
        assert "axiomatic-vs-sc" in oracles.stdout
        mutants = self._run("fuzz", "--list-mutants")
        assert "closure-dropped" in mutants.stdout
        profiles = self._run("fuzz", "--list-profiles")
        assert "branchy" in profiles.stdout

    def test_replay_corpus_entry(self):
        corpus = Path(__file__).parent / "corpus"
        entry = sorted(corpus.glob("*-min.litmus"))[0]
        result = self._run("fuzz", "--replay", str(entry))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "reproduces" in result.stdout
