"""Replay the regression corpus against the differential oracles.

Every ``tests/corpus/*.litmus`` entry is a parametrized tier-1 test:

* *Interesting programs* (no recorded mutant) must pass **all**
  applicable oracles on the healthy tree — they exist to keep the
  oracles exercised on register addressing, RMWs, branches, and fences.
* *Mutant reproducers* must be clean on the healthy tree **and** still
  fail their recorded oracle once their mutant is installed — if a
  refactor silently breaks a mutant's patch point, the reproducer test
  says so before the nightly fuzz run does.
"""

from pathlib import Path

import pytest

from repro.testing.corpus import load_corpus, load_entry, render_entry
from repro.testing.fuzz import replay_path
from repro.testing.mutants import get_mutant
from repro.testing.oracles import run_oracles

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)
HEALTHY = [entry for entry in ENTRIES if not entry.mutant]
REPRODUCERS = [entry for entry in ENTRIES if entry.mutant]


def test_corpus_is_seeded():
    assert len(ENTRIES) >= 10, "the corpus must hold at least 10 entries"
    assert HEALTHY, "expected interesting healthy programs"
    assert REPRODUCERS, "expected mutant reproducers"


def test_corpus_features_are_covered():
    """The interesting entries collectively exercise the generator's
    hard features (the ISSUE's register-address / RMW / branchy ask)."""
    from repro.isa.instructions import Branch, Load, Rmw, Store
    from repro.isa.operands import Reg

    seen = set()
    for entry in HEALTHY:
        for thread in entry.program.threads:
            for instruction in thread.code:
                if isinstance(instruction, Rmw):
                    seen.add("rmw")
                if isinstance(instruction, Branch):
                    seen.add("branch")
                if isinstance(instruction, (Load, Store)) and isinstance(
                    instruction.addr_operand(), Reg
                ):
                    seen.add("register-address")
    assert seen >= {"rmw", "branch", "register-address"}


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.stem for entry in ENTRIES]
)
def test_entry_round_trips(entry):
    """render → load is the identity on every banked file."""
    reloaded = load_entry(entry.path)
    assert reloaded.program == entry.program
    assert render_entry(reloaded) == render_entry(entry)


@pytest.mark.parametrize(
    "entry", HEALTHY, ids=[entry.path.stem for entry in HEALTHY]
)
def test_healthy_entry_passes_all_oracles(entry):
    discrepancies, _skipped = run_oracles(entry.program)
    assert not discrepancies, "\n".join(map(str, discrepancies))


@pytest.mark.parametrize(
    "entry", REPRODUCERS, ids=[entry.path.stem for entry in REPRODUCERS]
)
def test_reproducer_still_kills_its_mutant(entry):
    assert entry.oracle, f"{entry.path}: reproducer must record its oracle"
    with get_mutant(entry.mutant).applied():
        discrepancies, _ = run_oracles(entry.program, names=(entry.oracle,))
    assert discrepancies, (
        f"{entry.path.name} no longer reproduces mutant {entry.mutant!r}"
    )


@pytest.mark.parametrize(
    "entry", REPRODUCERS, ids=[entry.path.stem for entry in REPRODUCERS]
)
def test_reproducer_is_clean_on_healthy_tree(entry):
    discrepancies, _ = run_oracles(entry.program, names=(entry.oracle,))
    assert not discrepancies, "\n".join(map(str, discrepancies))


@pytest.mark.parametrize(
    "entry", REPRODUCERS, ids=[entry.path.stem for entry in REPRODUCERS]
)
def test_reproducer_is_small(entry):
    assert entry.program.instruction_count() <= 8


def test_replay_path_honors_recorded_mutant():
    """The CLI replay helper installs the entry's mutant automatically."""
    entry = REPRODUCERS[0]
    with_mutant, _ = replay_path(entry.path)
    healthy, _ = replay_path(entry.path, mutated=False)
    assert with_mutant and not healthy
