"""Tests for the diy-style cycle generator."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ProgramError
from repro.core.enumerate import enumerate_behaviors
from repro.litmus.generator import EdgeKindSpec as E
from repro.litmus.generator import generate, predict_verdict
from repro.litmus.runner import run_litmus
from repro.models.registry import get_model
from repro.operational.sc import run_sc
from repro.operational.storebuffer import run_tso

_CANONICAL = {
    "SB": [E.FRE, E.POD_WR, E.FRE, E.POD_WR],
    "MP": [E.POD_WW, E.RFE, E.POD_RR, E.FRE],
    "LB": [E.POD_RW, E.RFE, E.POD_RW, E.RFE],
    "2+2W": [E.POD_WW, E.WSE, E.POD_WW, E.WSE],
    "IRIW": [E.RFE, E.POD_RR, E.FRE, E.RFE, E.POD_RR, E.FRE],
    "R": [E.POD_WW, E.WSE, E.POD_WR, E.FRE],
    "S": [E.POD_WW, E.RFE, E.POD_RW, E.WSE],
    "Z6": [E.POD_WW, E.RFE, E.POD_RW, E.WSE, E.POD_WW, E.WSE],
}


class TestValidation:
    def test_too_short(self):
        with pytest.raises(ProgramError):
            generate([E.RFE])

    def test_needs_communication(self):
        with pytest.raises(ProgramError):
            generate([E.POD_WR, E.POD_RW])

    def test_needs_program_order(self):
        with pytest.raises(ProgramError):
            generate([E.RFE, E.FRE])

    def test_kind_chaining_checked(self):
        # Rfe targets R; PodWR sources W: mismatch.
        with pytest.raises(ProgramError):
            generate([E.RFE, E.POD_WR, E.FRE, E.POD_WR])

    def test_consecutive_wse_rejected(self):
        with pytest.raises(ProgramError):
            generate([E.WSE, E.WSE, E.POD_WW])


class TestCanonicalShapes:
    def test_sb_shape(self):
        generated = generate(_CANONICAL["SB"], "genSB")
        assert len(generated.test.program.threads) == 2
        assert generated.test.program.instruction_count() == 4

    def test_iriw_shape_has_four_threads(self):
        generated = generate(_CANONICAL["IRIW"])
        assert len(generated.test.program.threads) == 4

    @pytest.mark.parametrize("name", sorted(_CANONICAL))
    @pytest.mark.parametrize("model_name", ["sc", "tso", "pso", "weak"])
    def test_prediction_matches_enumerator(self, name, model_name):
        generated = generate(_CANONICAL[name], f"gen-{name}")
        verdict = run_litmus(generated.test, model_name)
        assert verdict.holds == predict_verdict(generated, model_name), (
            f"{name} under {model_name}"
        )

    def test_sc_never_observes_a_critical_cycle(self):
        for name, cycle in _CANONICAL.items():
            generated = generate(cycle, f"sc-{name}")
            assert not predict_verdict(generated, "sc")
            assert not run_litmus(generated.test, "sc").holds


_PO_EDGES = [
    E.POD_RR,
    E.POD_RW,
    E.POD_WR,
    E.POD_WW,
    E.FEN_RR,
    E.FEN_RW,
    E.FEN_WR,
    E.FEN_WW,
]

#: Communication edges joining a po-edge target kind to the next po-edge
#: source kind (R→R needs a write in between: Fre then Rfe).
_JOIN = {
    ("R", "W"): [E.FRE],
    ("W", "R"): [E.RFE],
    ("W", "W"): [E.WSE],
    ("R", "R"): [E.FRE, E.RFE],
}


@st.composite
def random_cycles(draw):
    """Random well-formed cycles built constructively: 2–3 po edges, each
    in its own thread, joined by matching communication edges."""
    po_edges = draw(st.lists(st.sampled_from(_PO_EDGES), min_size=2, max_size=3))
    cycle = []
    for index, edge in enumerate(po_edges):
        cycle.append(edge)
        following = po_edges[(index + 1) % len(po_edges)]
        cycle.extend(_JOIN[(edge.target_kind, following.source_kind)])
    return cycle


def _generate_or_skip(cycle):
    try:
        return generate(cycle)
    except ProgramError:
        assume(False)


class TestRandomCycles:
    @given(random_cycles())
    @settings(max_examples=40, deadline=None)
    def test_prediction_matches_enumerator_weak(self, cycle):
        generated = _generate_or_skip(cycle)
        verdict = run_litmus(generated.test, "weak")
        assert verdict.holds == predict_verdict(generated, "weak")

    @given(random_cycles())
    @settings(max_examples=25, deadline=None)
    def test_prediction_matches_enumerator_tso(self, cycle):
        generated = _generate_or_skip(cycle)
        verdict = run_litmus(generated.test, "tso")
        assert verdict.holds == predict_verdict(generated, "tso")

    @given(random_cycles())
    @settings(max_examples=20, deadline=None)
    def test_generated_programs_cross_validate(self, cycle):
        """Generated programs keep axiomatic ≡ operational equality."""
        program = _generate_or_skip(cycle).test.program
        assert (
            enumerate_behaviors(program, get_model("sc")).register_outcomes()
            == run_sc(program).outcomes
        )
        assert (
            enumerate_behaviors(program, get_model("tso")).register_outcomes()
            == run_tso(program).outcomes
        )
