"""Tests for the persistent behavior cache: the canonical cache key,
the bloom filter, the segment store, corruption tolerance (mirroring the
checkpoint suite), crash-safety under ``kill -9``, the
``enumerate_behaviors(cache=...)`` integration with its safety knobs,
cache-on vs cache-off oracle equivalence, and the CLI surface."""

import os
import signal
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.cache import BehaviorCache, BloomFilter
from repro.cache.segments import (
    SegmentWriter,
    TOMBSTONE,
    VALUE,
    create_segment,
    list_segments,
    read_payload,
    scan_segment,
)
from repro.core.enumerate import EnumerationLimits, enumerate_behaviors
from repro.core.serialization import behavior_cache_key
from repro.errors import CacheError, CacheIntegrityWarning
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.litmus.library import all_tests, get_test
from repro.models.registry import get_model

SB_SOURCE = """
test SB
init x=0 y=0

thread P0
    S x, 1
    r1 = L y

thread P1
    S y, 1
    r2 = L x
"""


def loadstore_keys(executions) -> list:
    return sorted(repr(e.loadstore_key()) for e in executions)


# ----------------------------------------------------------------------
# the canonical cache key


class TestBehaviorCacheKey:
    def test_deterministic_and_sized(self):
        test = get_test("SB")
        model = get_model("tso")
        key = behavior_cache_key(test.program, model)
        assert isinstance(key, bytes) and len(key) == 16
        assert key == behavior_cache_key(test.program, model)

    def test_same_source_assembled_twice_keys_identically(self):
        first = assemble(SB_SOURCE).program
        second = assemble(SB_SOURCE).program
        assert first is not second
        model = get_model("weak")
        assert behavior_cache_key(first, model) == behavior_cache_key(second, model)

    def test_disassembly_round_trip_keys_identically(self):
        test = get_test("MP+fences")
        model = get_model("weak")
        round_tripped = assemble(disassemble(test.program)).program
        assert behavior_cache_key(test.program, model) == behavior_cache_key(
            round_tripped, model
        )

    def test_any_instruction_change_rekeys(self):
        base = assemble(SB_SOURCE).program
        changed = assemble(SB_SOURCE.replace("S y, 1", "S y, 2")).program
        model = get_model("weak")
        assert behavior_cache_key(base, model) != behavior_cache_key(changed, model)

    def test_model_changes_rekey(self):
        program = get_test("SB").program
        keys = {
            behavior_cache_key(program, get_model(name))
            for name in ("sc", "tso", "pso", "weak", "weak-spec", "weak-corr")
        }
        assert len(keys) == 6

    def test_every_limit_field_rekeys(self):
        program = get_test("SB").program
        model = get_model("weak")
        base = EnumerationLimits()
        variants = [
            EnumerationLimits(max_behaviors=base.max_behaviors - 1),
            EnumerationLimits(max_executions=base.max_executions - 1),
            EnumerationLimits(max_nodes_per_thread=base.max_nodes_per_thread - 1),
            EnumerationLimits(deadline_seconds=5.0),
            EnumerationLimits(max_memory_mb=64.0),
        ]
        keys = {behavior_cache_key(program, model, limits) for limits in variants}
        keys.add(behavior_cache_key(program, model, base))
        assert len(keys) == len(variants) + 1
        # None spells the same request as the defaults, so same key.
        assert behavior_cache_key(program, model, None) == behavior_cache_key(
            program, model, base
        )

    def test_cross_process_stability(self):
        """The digest must not depend on process state (hash seeds,
        dict order): a fresh interpreter derives the same key."""
        test = get_test("SB")
        model = get_model("tso")
        local = behavior_cache_key(test.program, model).hex()
        script = (
            "from repro.core.serialization import behavior_cache_key\n"
            "from repro.litmus.library import get_test\n"
            "from repro.models.registry import get_model\n"
            "print(behavior_cache_key(get_test('SB').program, get_model('tso')).hex())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONHASHSEED"] = "12345"  # force a different hash seed
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert result.stdout.strip() == local


# ----------------------------------------------------------------------
# the bloom filter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.sized_for(500)
        keys = [os.urandom(16) for _ in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_under_one_percent(self):
        bloom = BloomFilter.sized_for(1000)
        for _ in range(1000):
            bloom.add(os.urandom(16))
        novel = [os.urandom(16) for _ in range(20_000)]
        measured = sum(1 for key in novel if key in bloom) / len(novel)
        assert measured < 0.01
        assert bloom.estimated_fpr() < 0.01
        assert not bloom.saturated

    def test_encode_decode_round_trip(self):
        bloom = BloomFilter.sized_for(64)
        keys = [os.urandom(16) for _ in range(64)]
        for key in keys:
            bloom.add(key)
        decoded = BloomFilter.decode(bloom.encode())
        assert decoded is not None
        assert decoded.bits == bloom.bits and decoded.hashes == bloom.hashes
        assert all(key in decoded for key in keys)

    def test_damaged_encoding_decodes_to_none(self):
        encoded = bytearray(BloomFilter.sized_for(64).encode())
        assert BloomFilter.decode(bytes(encoded[:-1])) is None  # truncated
        encoded[len(encoded) // 2] ^= 0xFF
        assert BloomFilter.decode(bytes(encoded)) is None  # flipped bit
        assert BloomFilter.decode(b"") is None


# ----------------------------------------------------------------------
# segments: framing and damage policy


class TestSegments:
    def write_records(self, directory, items):
        writer = SegmentWriter(Path(directory))
        records = [writer.append(key, VALUE, payload) for key, payload in items]
        writer.close()
        return records

    def test_append_scan_read_round_trip(self, tmp_path):
        items = [(os.urandom(16), f"payload-{i}".encode()) for i in range(5)]
        self.write_records(tmp_path, items)
        [segment] = list_segments(tmp_path)
        scanned = scan_segment(segment)
        assert [(r.key, r.rtype) for r in scanned] == [
            (key, VALUE) for key, _ in items
        ]
        assert [read_payload(r) for r in scanned] == [p for _, p in items]

    def test_truncated_tail_is_tolerated_silently(self, tmp_path):
        items = [(os.urandom(16), b"x" * 100), (os.urandom(16), b"y" * 100)]
        self.write_records(tmp_path, items)
        [segment] = list_segments(tmp_path)
        size = segment.stat().st_size
        with open(segment, "r+b") as handle:
            handle.truncate(size - 50)  # cut into the second record
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a torn tail must not warn
            scanned = scan_segment(segment)
        assert [r.key for r in scanned] == [items[0][0]]
        assert read_payload(scanned[0]) == items[0][1]

    def test_flipped_payload_byte_is_skipped_with_warning(self, tmp_path):
        items = [(os.urandom(16), b"a" * 64), (os.urandom(16), b"b" * 64)]
        records = self.write_records(tmp_path, items)
        with open(records[0].path, "r+b") as handle:
            handle.seek(records[0].payload_offset + 10)
            handle.write(b"\xff")
        with pytest.warns(CacheIntegrityWarning, match="failed its checksum"):
            assert read_payload(records[0]) is None
        assert read_payload(records[1]) == items[1][1]  # neighbors unharmed

    def test_flipped_header_byte_stops_scan_with_warning(self, tmp_path):
        items = [(os.urandom(16), b"a" * 32), (os.urandom(16), b"b" * 32)]
        records = self.write_records(tmp_path, items)
        header_offset = records[1].payload_offset - 29  # inside record 2's header
        with open(records[1].path, "r+b") as handle:
            handle.seek(header_offset)
            original = handle.read(1)
            handle.seek(header_offset)
            handle.write(bytes([original[0] ^ 0xFF]))
        with pytest.warns(CacheIntegrityWarning, match="corrupt record header"):
            scanned = scan_segment(records[0].path)
        assert [r.key for r in scanned] == [items[0][0]]

    def test_unrecognized_file_header_skips_segment(self, tmp_path):
        path = create_segment(tmp_path)
        with open(path, "r+b") as handle:
            handle.write(b"JUNK")
        with pytest.warns(CacheIntegrityWarning, match="unrecognized header"):
            assert scan_segment(path) == []

    def test_concurrent_writers_use_distinct_segments(self, tmp_path):
        a, b = SegmentWriter(tmp_path), SegmentWriter(tmp_path)
        key_a, key_b = os.urandom(16), os.urandom(16)
        # interleave appends from two live writers
        a.append(key_a, VALUE, b"from-a-1")
        b.append(key_b, VALUE, b"from-b-1")
        a.append(key_a, TOMBSTONE, b"")
        b.append(key_b, VALUE, b"from-b-2")
        a.close(), b.close()
        segments = list_segments(tmp_path)
        assert len(segments) == 2  # one private segment per writer
        records = [r for s in segments for r in scan_segment(s)]
        assert sorted(r.rtype for r in records) == [VALUE, VALUE, VALUE, TOMBSTONE]


# ----------------------------------------------------------------------
# the BehaviorCache store


def populate(cache, names=("SB", "MP"), model_name="weak"):
    keys = {}
    model = get_model(model_name)
    for name in names:
        test = get_test(name)
        enumerate_behaviors(test.program, model, cache=cache)
        keys[name] = behavior_cache_key(test.program, model, None)
    return keys


class TestBehaviorCacheStore:
    def test_round_trip_across_instances(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        test = get_test("SB")
        model = get_model("weak")
        cold = enumerate_behaviors(test.program, model, cache=cache)
        cache.close()

        warm_cache = BehaviorCache(tmp_path)
        warm = enumerate_behaviors(test.program, model, cache=warm_cache)
        assert warm.cached and warm.complete
        assert loadstore_keys(warm.executions) == loadstore_keys(cold.executions)
        assert warm.register_outcomes() == cold.register_outcomes()
        assert warm_cache.counters.hits == 1

    def test_bloom_negative_answers_without_index(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        populate(cache)
        cache.close()

        fresh = BehaviorCache(tmp_path)
        assert fresh.lookup(os.urandom(16)) is None
        assert fresh.counters.bloom_negatives == 1
        assert fresh._index is None  # the index was never built

    def test_incomplete_results_are_never_cached(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        test = get_test("IRIW")
        model = get_model("weak")
        limits = EnumerationLimits(max_behaviors=5)
        partial = enumerate_behaviors(test.program, model, limits, cache=cache)
        assert not partial.complete
        assert cache.counters.puts == 0
        again = enumerate_behaviors(test.program, model, limits, cache=cache)
        assert not again.cached

    def test_duplicate_puts_are_skipped(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        test = get_test("SB")
        model = get_model("weak")
        enumerate_behaviors(test.program, model, cache=cache)
        result = enumerate_behaviors(test.program, model, cache=cache)
        assert result.cached
        assert cache.counters.puts == 1 and cache.counters.duplicate_puts == 0
        # force a re-store attempt under the same key
        key = behavior_cache_key(test.program, model, None)
        stored = cache.store(
            key, test.program, model, None, result.executions, result.stats
        )
        assert stored is False and cache.counters.duplicate_puts == 1

    def test_invalidate_tombstones_the_key(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        keys = populate(cache)
        cache.invalidate(keys["SB"])
        cache.close()
        fresh = BehaviorCache(tmp_path)
        assert fresh.lookup(keys["SB"]) is None
        assert fresh.lookup(keys["MP"]) is not None

    def test_validate_knob_accepts_honest_hits(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        populate(cache)
        cache.close()
        validating = BehaviorCache(tmp_path, validate=True)
        test = get_test("SB")
        result = enumerate_behaviors(test.program, get_model("weak"), cache=validating)
        assert result.cached
        assert validating.counters.validations == 1

    def test_validate_knob_rejects_tampered_entries(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        test = get_test("SB")
        model = get_model("weak")
        result = enumerate_behaviors(test.program, model, cache=cache)
        # Store a *subset* of the executions under the honest key: the
        # payload decodes and key-verifies, so only validate catches it.
        key = behavior_cache_key(test.program, model, None)
        cache.invalidate(key)
        cache.store(key, test.program, model, None, result.executions[:1], result.stats)
        cache.close()

        validating = BehaviorCache(tmp_path, validate=True)
        with pytest.raises(CacheError, match="disagrees with a fresh enumeration"):
            enumerate_behaviors(test.program, model, cache=validating)
        # ...and the bad entry was invalidated in the process.
        assert validating.counters.invalidations == 1

    def test_verify_full_reenumerates(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        populate(cache)
        report = cache.verify(full=True)
        assert report["checked"] == 2 and report["ok"] == 2 and not report["bad"]

    def test_compact_folds_segments_and_preserves_hits(self, tmp_path):
        keys = {}
        for names in (("SB", "MP"), ("LB",), ("CoWW",)):  # 3 writers' segments
            cache = BehaviorCache(tmp_path)
            keys.update(populate(cache, names))
            cache.close()
        extra = BehaviorCache(tmp_path)
        extra.invalidate(keys["LB"])
        report = extra.compact()
        assert report["segments_before"] >= 3
        assert report["live_entries"] == 3  # LB tombstoned away
        assert len(list_segments(Path(tmp_path))) == 1
        assert extra.lookup(keys["SB"]) is not None
        assert extra.lookup(keys["CoWW"]) is not None
        assert extra.lookup(keys["LB"]) is None
        extra.close()

    def test_stats_shape(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        populate(cache)
        stats = cache.stats()
        assert stats["live_entries"] == 2
        assert stats["segments"] == 1
        assert stats["counters"]["puts"] == 2
        assert 0 <= stats["bloom_fpr_estimate"] < 0.01


# ----------------------------------------------------------------------
# store-level corruption (mirroring the checkpoint suite)


class TestCacheCorruption:
    def test_flipped_record_checksum_degrades_to_miss(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        keys = populate(cache)
        cache.close()
        [segment] = list_segments(Path(tmp_path))
        records = scan_segment(segment)
        target = next(r for r in records if r.key == keys["SB"])
        with open(segment, "r+b") as handle:
            handle.seek(target.payload_offset + 5)
            handle.write(b"\xff\xff")

        fresh = BehaviorCache(tmp_path)
        with pytest.warns(CacheIntegrityWarning, match="failed its checksum"):
            assert fresh.lookup(keys["SB"]) is None
        assert fresh.counters.decode_failures == 1
        assert fresh.lookup(keys["MP"]) is not None  # the rest still hits
        # ...and the enumeration path transparently re-enumerates:
        with pytest.warns(CacheIntegrityWarning):
            result = enumerate_behaviors(
                get_test("SB").program, get_model("weak"), cache=fresh
            )
        assert not result.cached and result.complete

    def test_hard_corrupt_index_is_rejected_with_clear_error(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        keys = populate(cache)
        cache.stats()  # builds the index, so close() persists it
        cache.close()
        index_path = Path(tmp_path) / "index.json"
        assert index_path.exists()
        index_path.write_text('{"format": 1, "segments"', encoding="utf-8")

        fresh = BehaviorCache(tmp_path)
        with pytest.raises(CacheError, match="delete it to rebuild"):
            fresh.lookup(keys["SB"])

        # A checksum-mismatched (vs unparseable) index is equally hard-rejected.
        index_path.write_text(
            '{"format": 1, "segments": {}, "crc": "0000000000000000"}',
            encoding="utf-8",
        )
        with pytest.raises(CacheError, match="failed its checksum"):
            BehaviorCache(tmp_path).lookup(keys["SB"])

        # Deleting the index rebuilds from segments, as the error says.
        index_path.unlink()
        recovered = BehaviorCache(tmp_path)
        assert recovered.lookup(keys["SB"]) is not None

    def test_corrupt_bloom_sidecar_rebuilds_with_warning(self, tmp_path):
        cache = BehaviorCache(tmp_path)
        keys = populate(cache)
        cache.flush()
        cache.close()
        bloom_path = Path(tmp_path) / "bloom.json"
        assert bloom_path.exists()
        bloom_path.write_text("not json at all", encoding="utf-8")

        fresh = BehaviorCache(tmp_path)
        with pytest.warns(CacheIntegrityWarning, match="rebuilding"):
            entry = fresh.lookup(keys["SB"])
        assert entry is not None  # no false negatives from the rebuild

    def test_stale_bloom_sidecar_scans_appended_tail(self, tmp_path):
        """A sidecar written before further appends must not produce
        false negatives for the newer records."""
        cache = BehaviorCache(tmp_path)
        populate(cache, ("SB",))
        cache.flush()
        cache.close()
        # Append MP *after* the sidecar snapshot, through a second cache.
        late = BehaviorCache(tmp_path)
        keys = populate(late, ("MP",))
        late.close()  # flushes its own sidecar, but now corrupt it back:
        fresh = BehaviorCache(tmp_path)
        assert fresh.lookup(keys["MP"]) is not None

    def test_concurrent_caches_share_one_directory(self, tmp_path):
        a, b = BehaviorCache(tmp_path), BehaviorCache(tmp_path)
        model = get_model("weak")
        sb, mp = get_test("SB"), get_test("MP")
        enumerate_behaviors(sb.program, model, cache=a)
        enumerate_behaviors(mp.program, model, cache=b)
        a.close(), b.close()

        reader = BehaviorCache(tmp_path)
        assert enumerate_behaviors(sb.program, model, cache=reader).cached
        assert enumerate_behaviors(mp.program, model, cache=reader).cached


# ----------------------------------------------------------------------
# kill -9 crash-safety (acceptance criterion)


KILLER_SCRIPT = """
import sys
from repro.cache import BehaviorCache
from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import all_tests
from repro.models.registry import get_model

cache = BehaviorCache(sys.argv[1])
model = get_model("weak")
for test in all_tests():
    enumerate_behaviors(test.program, model, cache=cache)
    print(test.name, flush=True)
"""


class TestKillNineSafety:
    def test_sigkill_mid_write_never_corrupts_the_store(self, tmp_path):
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [sys.executable, "-c", KILLER_SCRIPT, str(cache_dir)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        survived = []
        for line in process.stdout:
            survived.append(line.strip())
            if len(survived) >= 3:
                break
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
        process.stdout.close()
        assert len(survived) >= 3

        # Restart: the store opens, every surviving acknowledged entry
        # still hits, and a possible torn tail degraded silently.
        cache = BehaviorCache(cache_dir)
        model = get_model("weak")
        hits = 0
        for name in survived:
            result = enumerate_behaviors(get_test(name).program, model, cache=cache)
            assert result.complete
            hits += 1 if result.cached else 0
        assert hits == len(survived)
        report = cache.verify()
        assert not report["bad"]
        # ...and the store still accepts writes afterwards.
        populate(cache, ("CoRR",))
        cache.close()


# ----------------------------------------------------------------------
# cache-on vs cache-off oracle equivalence


class TestOracleEquivalence:
    def test_fuzz_verdicts_identical_with_and_without_cache(self, tmp_path):
        from repro.testing.fuzz import campaign_items, fuzz_one

        baseline = [fuzz_one(item) for item in campaign_items(3, 6)]
        cached_cold = [
            fuzz_one(item) for item in campaign_items(3, 6, cache_dir=tmp_path)
        ]
        cached_warm = [
            fuzz_one(item) for item in campaign_items(3, 6, cache_dir=tmp_path)
        ]
        for off, cold, warm in zip(baseline, cached_cold, cached_warm):
            assert off.discrepancies == cold.discrepancies == warm.discrepancies
            assert off.skipped == cold.skipped == warm.skipped
        shared = BehaviorCache.shared(tmp_path)
        assert shared.counters.hits > 0  # the warm pass actually hit

    def test_oracle_context_keeps_engine_variants_uncached(self, tmp_path):
        """The parallel/pruned enumerations exist to cross-check those
        engines; they must bypass the memo store."""
        from repro.testing.oracles import OracleContext

        cache = BehaviorCache(tmp_path)
        program = get_test("SB").program
        ctx = OracleContext(program, cache=cache)
        ctx.result("weak")
        ctx.result("weak", pruned=True)
        assert cache.counters.puts == 1  # only the baseline was stored
        ctx2 = OracleContext(program, cache=cache)
        assert ctx2.result("weak").cached
        assert not ctx2.result("weak", pruned=True).cached
        assert cache.counters.puts == 1


# ----------------------------------------------------------------------
# service integration: the cache-hit fast path


class TestServiceFastPath:
    def test_worker_slice_hits_skip_enumeration(self, tmp_path):
        from repro.service.pool import WorkerPool

        pool = WorkerPool(workers=0, cache_dir=tmp_path / "cache")
        first = pool.run_job(SB_SOURCE, "weak", {}, None, tmp_path / "a.ckpt")
        assert first.status == "completed"
        second = pool.run_job(SB_SOURCE, "weak", {}, None, tmp_path / "b.ckpt")
        assert second.status == "completed"
        assert second.result == first.result
        shared = BehaviorCache.shared(tmp_path / "cache")
        assert shared.counters.hits >= 1

    def test_submit_fast_path_completes_instantly(self, tmp_path):
        from repro.service.client import ServiceClient
        from tests.test_service import ServerThread

        cache_dir = tmp_path / "cache"
        # Warm the cache out of band, exactly as a prior server run would.
        warm = BehaviorCache(cache_dir)
        enumerate_behaviors(
            assemble(SB_SOURCE).program, get_model("weak"), cache=warm
        )
        warm.flush()

        with ServerThread(wal_dir=tmp_path / "wal", cache_dir=cache_dir) as fixture:
            client = ServiceClient(fixture.url)
            job = client.submit(SB_SOURCE, model="weak")
            # No polling: the submission response is already terminal.
            assert job["state"] == "completed"
            assert job["result"]["executions"] == 4
            direct = enumerate_behaviors(
                assemble(SB_SOURCE).program, get_model("weak")
            )
            from repro.service.jobs import canonical_result

            assert job["result"] == canonical_result(direct)


# ----------------------------------------------------------------------
# the CLI surface


class TestCacheCLI:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_enumerate_and_cache_commands(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert self.run_cli("enumerate", "SB", "--cache-dir", cache_dir) == 0
        assert self.run_cli("enumerate", "SB", "--cache-dir", cache_dir) == 0
        capsys.readouterr()

        assert self.run_cli("cache", "stats", cache_dir) == 0
        out = capsys.readouterr().out
        assert "live entries      : 1" in out

        assert self.run_cli("cache", "verify", cache_dir) == 0
        assert "1 ok, 0 bad" in capsys.readouterr().out

        assert self.run_cli("cache", "verify", cache_dir, "--full") == 0
        capsys.readouterr()

        assert self.run_cli("cache", "compact", cache_dir) == 0
        assert "compacted" in capsys.readouterr().out

        # post-compaction the entry still hits
        assert self.run_cli("enumerate", "SB", "--cache-dir", cache_dir) == 0

    def test_cache_command_requires_existing_dir(self, tmp_path, capsys):
        assert self.run_cli("cache", "stats", str(tmp_path / "missing")) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_library_sweep_warm_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = [
            "enumerate",
            "--library",
            "--model",
            "sc",
            "--cache-dir",
            cache_dir,
        ]
        assert self.run_cli(*args) == 0
        capsys.readouterr()
        assert self.run_cli(*args) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if line.strip()]
        assert rows and all("cached" in line for line in rows)
