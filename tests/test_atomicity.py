"""Unit tests for the Store Atomicity closure on hand-built graphs."""

import pytest

from repro.errors import AtomicityViolation
from repro.core.atomicity import check_store_atomicity, close_store_atomicity
from repro.core.graph import EdgeKind, ExecutionGraph
from repro.core.node import Node
from repro.isa.instructions import OpClass


def store(nid: int, addr: str, value: int, tid: int = 0, index: int = 0) -> Node:
    return Node(
        nid=nid,
        tid=tid,
        index=index,
        instruction=None,
        op_class=OpClass.STORE,
        executed=True,
        writes=True,
        addr=addr,
        stored=value,
        value=value,
    )


def load(nid: int, addr: str, source: int | None = None, tid: int = 0, index: int = 0) -> Node:
    node = Node(
        nid=nid,
        tid=tid,
        index=index,
        instruction=None,
        op_class=OpClass.LOAD,
        addr=addr,
    )
    if source is not None:
        node.source = source
        node.executed = True
    return node


def build(*nodes: Node) -> ExecutionGraph:
    graph = ExecutionGraph()
    for node in nodes:
        graph.add_node(node)
    return graph


class TestRuleA:
    def test_predecessor_store_ordered_before_source(self):
        """S ⊑ L with S ≠ source ⇒ S ⊑ source."""
        graph = build(
            store(0, "x", 1, tid=0, index=0),
            store(1, "x", 2, tid=1, index=0),
            load(2, "x", source=1, tid=0, index=1),
        )
        graph.add_edge(0, 2, EdgeKind.PROGRAM)  # S0 ⊑ L
        graph.add_edge(1, 2, EdgeKind.SOURCE)
        added = close_store_atomicity(graph)
        assert added >= 1
        assert graph.before(0, 1)
        assert check_store_atomicity(graph) == []

    def test_violation_when_source_precedes_predecessor(self):
        """If source ⊑ S ⊑ L already, the closure must fail (overwrite)."""
        graph = build(
            store(0, "x", 1, tid=1, index=0),
            store(1, "x", 2, tid=2, index=0),
            load(2, "x", source=0, tid=0, index=0),
        )
        graph.add_edge(0, 1, EdgeKind.PROGRAM)  # source ⊑ S1
        graph.add_edge(1, 2, EdgeKind.PROGRAM)  # S1 ⊑ L
        graph.add_edge(0, 2, EdgeKind.SOURCE)
        with pytest.raises(AtomicityViolation):
            close_store_atomicity(graph)


class TestRuleB:
    def test_observer_ordered_before_overwriting_store(self):
        """source ⊑ S ⇒ L ⊑ S."""
        graph = build(
            store(0, "x", 1, tid=1, index=0),
            store(1, "x", 2, tid=1, index=1),
            load(2, "x", source=0, tid=0, index=0),
        )
        graph.add_edge(0, 1, EdgeKind.PROGRAM)  # source ⊑ S1
        graph.add_edge(0, 2, EdgeKind.SOURCE)
        close_store_atomicity(graph)
        assert graph.before(2, 1)  # L ⊑ S1


class TestRuleC:
    def test_common_ancestor_precedes_common_successor(self):
        """The Figure 5 shape in miniature: two same-address load/store
        pairings order a mutual ancestor before a mutual successor."""
        graph = build(
            store(0, "y", 2, tid=1, index=0),  # S2
            store(1, "y", 4, tid=2, index=0),  # S4
            load(2, "y", source=0, tid=0, index=1),  # L3 observes S2
            load(3, "y", source=1, tid=0, index=2),  # L5 observes S4
            store(4, "x", 1, tid=0, index=0),  # S1: mutual ancestor of loads
            load(5, "z", tid=3, index=0),  # L7-like mutual successor
        )
        graph.nodes[5].source = None
        graph.add_edge(0, 2, EdgeKind.SOURCE)
        graph.add_edge(1, 3, EdgeKind.SOURCE)
        graph.add_edge(4, 2, EdgeKind.PROGRAM)  # S1 ⊑ L3
        graph.add_edge(4, 3, EdgeKind.PROGRAM)  # S1 ⊑ L5
        graph.add_edge(0, 5, EdgeKind.PROGRAM)  # S2 ⊑ successor
        graph.add_edge(1, 5, EdgeKind.PROGRAM)  # S4 ⊑ successor
        close_store_atomicity(graph)
        assert graph.before(4, 5)  # the rule-c edge
        # and the same-address pair itself stays unordered
        assert not graph.ordered(0, 1)

    def test_rule_c_needs_distinct_sources(self):
        graph = build(
            store(0, "y", 2, tid=1, index=0),
            load(1, "y", source=0, tid=0, index=1),
            load(2, "y", source=0, tid=0, index=2),
            store(3, "x", 1, tid=0, index=0),
            load(4, "z", tid=2, index=0),
        )
        graph.add_edge(0, 1, EdgeKind.SOURCE)
        graph.add_edge(0, 2, EdgeKind.SOURCE)
        graph.add_edge(3, 1, EdgeKind.PROGRAM)
        graph.add_edge(3, 2, EdgeKind.PROGRAM)
        graph.add_edge(0, 4, EdgeKind.PROGRAM)
        close_store_atomicity(graph)
        assert not graph.ordered(3, 4)


class TestFixpoint:
    def test_cascade_requires_iteration(self):
        """The Figure 7 shape: one inserted edge exposes another."""
        graph = build(
            store(0, "x", 1, tid=0, index=0),  # S1
            store(1, "y", 3, tid=0, index=1),  # S3 (after S1 via fence)
            load(2, "y", source=3, tid=0, index=2),  # L6 observes S4
            store(3, "y", 4, tid=1, index=0),  # S4
            load(4, "x", source=5, tid=1, index=1),  # L5 observes S2
            store(5, "x", 2, tid=2, index=0),  # S2
        )
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        graph.add_edge(1, 2, EdgeKind.PROGRAM)
        graph.add_edge(3, 4, EdgeKind.PROGRAM)
        graph.add_edge(3, 2, EdgeKind.SOURCE)
        graph.add_edge(5, 4, EdgeKind.SOURCE)
        close_store_atomicity(graph)
        assert graph.before(1, 3)  # edge c: S3 ⊑ S4
        assert graph.before(0, 5)  # edge d: S1 ⊑ S2

    def test_idempotent(self):
        graph = build(
            store(0, "x", 1, tid=1, index=0),
            store(1, "x", 2, tid=1, index=1),
            load(2, "x", source=0, tid=0, index=0),
        )
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        graph.add_edge(0, 2, EdgeKind.SOURCE)
        close_store_atomicity(graph)
        assert close_store_atomicity(graph) == 0


class TestRmwSelfExclusion:
    def test_rmw_node_not_compared_with_itself(self):
        """An RMW is a store to its own load's address; the rules must not
        order it around itself."""
        rmw = Node(
            nid=1,
            tid=0,
            index=0,
            instruction=None,
            op_class=OpClass.RMW,
            addr="x",
        )
        graph = build(store(0, "x", 0, tid=1, index=0), rmw)
        graph.add_edge(0, 1, EdgeKind.SOURCE)
        rmw.source = 0
        rmw.executed = True
        rmw.writes = True
        rmw.stored = 1
        rmw.value = 0
        close_store_atomicity(graph)
        assert check_store_atomicity(graph) == []

    def test_two_rmws_cannot_share_a_source(self):
        """Two fetch-and-adds observing the same store violate atomicity:
        rule b applies in both directions and forces a cycle."""
        def rmw(nid, tid):
            node = Node(
                nid=nid, tid=tid, index=0, instruction=None, op_class=OpClass.RMW,
                addr="c",
            )
            node.source = 0
            node.executed = True
            node.writes = True
            node.stored = 1
            node.value = 0
            return node

        graph = build(store(0, "c", 0, tid=2, index=0), rmw(1, 0), rmw(2, 1))
        graph.add_edge(0, 1, EdgeKind.SOURCE)
        graph.add_edge(0, 2, EdgeKind.SOURCE)
        with pytest.raises(AtomicityViolation):
            close_store_atomicity(graph)


class TestDeclarativeChecker:
    def test_reports_missing_rule_a_edge(self):
        graph = build(
            store(0, "x", 1, tid=0, index=0),
            store(1, "x", 2, tid=1, index=0),
            load(2, "x", source=1, tid=0, index=1),
        )
        graph.add_edge(0, 2, EdgeKind.PROGRAM)
        graph.add_edge(1, 2, EdgeKind.SOURCE)
        problems = check_store_atomicity(graph)
        assert any("rule a" in problem for problem in problems)

    def test_reports_observed_overwrite(self):
        graph = build(
            store(0, "x", 1, tid=1, index=0),
            store(1, "x", 2, tid=1, index=1),
            load(2, "x", source=0, tid=0, index=0),
        )
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        graph.add_edge(0, 2, EdgeKind.SOURCE)
        graph.add_edge(1, 2, EdgeKind.PROGRAM)  # overwriting store between
        problems = check_store_atomicity(graph)
        assert any("overwritten" in problem for problem in problems)

    def test_reports_source_to_wrong_address(self):
        graph = build(
            store(0, "y", 1, tid=1, index=0),
            load(1, "x", source=0, tid=0, index=0),
        )
        graph.add_edge(0, 1, EdgeKind.SOURCE)
        problems = check_store_atomicity(graph)
        assert any("different address" in problem for problem in problems)
