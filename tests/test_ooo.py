"""Tests for the out-of-order core substrate."""

import pytest
from hypothesis import given, settings

from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.ooo import run_ooo

from tests.conftest import build_branchy, build_loop, build_single_thread
from tests.test_properties import small_programs


def _tso_outcomes(program):
    return enumerate_behaviors(program, get_model("tso")).register_outcomes()


class TestBasics:
    def test_deterministic_per_seed(self):
        program = get_test("SB").program
        first = run_ooo(program, seed=11)
        second = run_ooo(program, seed=11)
        assert first.registers == second.registers
        assert first.steps == second.steps

    def test_single_thread_dataflow(self):
        program = build_single_thread()
        run = run_ooo(program, seed=0)
        registers = dict(run.registers)
        assert registers[("T", "r1")] == 5
        assert registers[("T", "r2")] == 15
        assert registers[("T", "r3")] == 15

    def test_branchy_program(self):
        outcomes = {run_ooo(build_branchy(), seed=seed).registers for seed in range(40)}
        assert outcomes <= _tso_outcomes(build_branchy())

    def test_loop_program(self):
        outcomes = {run_ooo(build_loop(), seed=seed).registers for seed in range(40)}
        assert outcomes <= _tso_outcomes(build_loop())


class TestTsoConformance:
    @pytest.mark.parametrize(
        "test_name",
        ["SB", "MP", "LB", "CoRR", "R", "INC+INC", "dekker-nofence", "lock-handoff"],
    )
    def test_outcomes_within_tso(self, test_name):
        program = get_test(test_name).program
        tso = _tso_outcomes(program)
        for seed in range(80):
            assert run_ooo(program, seed=seed).registers in tso

    def test_sb_reaches_the_relaxed_outcome(self):
        program = get_test("SB").program
        relaxed = frozenset({(("P0", "r1"), 0), (("P1", "r2"), 0)})
        outcomes = {run_ooo(program, seed=seed).registers for seed in range(120)}
        assert relaxed in outcomes

    def test_fences_respected(self):
        program = get_test("SB+fences").program
        relaxed = frozenset({(("P0", "r1"), 0), (("P1", "r2"), 0)})
        for seed in range(80):
            assert run_ooo(program, seed=seed).registers != relaxed

    def test_replays_occur_somewhere(self):
        total = sum(
            run_ooo(get_test("CoRR").program, seed=seed).replays for seed in range(120)
        )
        assert total > 0

    @given(small_programs())
    @settings(max_examples=15, deadline=None)
    def test_property_random_programs_within_tso(self, program):
        tso = _tso_outcomes(program)
        for seed in range(25):
            assert run_ooo(program, seed=seed).registers in tso


class TestNaiveMachine:
    def test_corr_leaks_without_replay(self):
        program = get_test("CoRR").program
        tso = _tso_outcomes(program)
        leaked = [
            seed
            for seed in range(300)
            if run_ooo(program, seed=seed, replay_enabled=False).registers not in tso
        ]
        assert leaked

    def test_leaks_disappear_with_replay(self):
        program = get_test("CoRR").program
        tso = _tso_outcomes(program)
        for seed in range(300):
            assert run_ooo(program, seed=seed, replay_enabled=True).registers in tso
