"""Integration: every paper experiment passes all its claims."""

import pytest

from repro.experiments import (
    coherence_exp,
    fig1,
    fig3,
    fig4,
    fig5,
    fig7,
    fig89,
    fig1011,
    litmus_matrix,
    parallel_exp,
    scaling,
    staticrace_exp,
    wellsync_exp,
    xval,
)
from repro.experiments.base import Claim, ExperimentResult

_FAST_MODULES = {
    "FIG1": fig1,
    "FIG3": fig3,
    "FIG4": fig4,
    "FIG5": fig5,
    "FIG7": fig7,
    "FIG8_9": fig89,
    "FIG10_11": fig1011,
    "TAB-WSYNC": wellsync_exp,
}

_SLOW_MODULES = {
    "TAB-LITMUS": litmus_matrix,
    "TAB-XVAL": xval,
    "TAB-COHERENCE": coherence_exp,
    "TAB-SCALE": scaling,
    "TAB-STATIC": staticrace_exp,
    "TAB-PARALLEL": parallel_exp,
}


@pytest.mark.parametrize("experiment_id", sorted(_FAST_MODULES))
def test_figure_experiment_passes(experiment_id):
    result = _FAST_MODULES[experiment_id].run()
    assert result.experiment_id == experiment_id
    failing = [claim for claim in result.claims if not claim.holds]
    assert not failing, "\n".join(str(claim) for claim in failing)


@pytest.mark.parametrize("experiment_id", sorted(_SLOW_MODULES))
def test_table_experiment_passes(experiment_id):
    result = _SLOW_MODULES[experiment_id].run()
    failing = [claim for claim in result.claims if not claim.holds]
    assert not failing, "\n".join(str(claim) for claim in failing)


class TestExperimentInfra:
    def test_claim_holds(self):
        assert Claim("d", 1, 1).holds
        assert not Claim("d", 1, 2).holds
        assert "FAIL" in str(Claim("d", 1, 2))

    def test_result_aggregation(self):
        result = ExperimentResult("X", "t")
        result.claim("ok", True, True)
        assert result.passed
        result.claim("bad", True, False)
        assert not result.passed
        assert "FAIL" in result.summary()

    def test_report_markdown(self):
        from repro.experiments.report import FullReport, to_markdown

        result = ExperimentResult("X", "title")
        result.claim("something", 1, 1)
        result.details = "table here"
        markdown = to_markdown(FullReport([result]))
        assert "## X — title [PASS]" in markdown
        assert "table here" in markdown
        assert "ALL EXPERIMENTS PASS" in markdown
