"""Tests for the parametric litmus families."""

import pytest

from repro.errors import ProgramError
from repro.core.enumerate import enumerate_behaviors
from repro.litmus.families import independent_writers, mp_chain, sb_ring
from repro.litmus.library import get_test
from repro.litmus.runner import run_litmus
from repro.models.registry import get_model

MODELS = ("sc", "tso", "pso", "weak")


class TestSbRing:
    def test_minimum_size(self):
        with pytest.raises(ProgramError):
            sb_ring(1)

    def test_ring_of_two_is_sb(self):
        ring = sb_ring(2)
        classic = get_test("SB")
        for model_name in MODELS:
            assert (
                run_litmus(ring, model_name).holds
                == run_litmus(classic, model_name).holds
            )

    @pytest.mark.parametrize("n", [2, 3, 4])
    @pytest.mark.parametrize("model_name", MODELS)
    def test_expectations_uniform_in_n(self, n, model_name):
        verdict = run_litmus(sb_ring(n), model_name)
        assert verdict.matches_expectation, (n, model_name)

    @pytest.mark.parametrize("n", [2, 3])
    def test_fenced_ring_forbidden(self, n):
        for model_name in MODELS:
            assert not run_litmus(sb_ring(n, fenced=True), model_name).holds

    def test_behavior_count_grows(self):
        weak = get_model("weak")
        small = len(enumerate_behaviors(sb_ring(2).program, weak))
        large = len(enumerate_behaviors(sb_ring(3).program, weak))
        assert large > small


class TestMpChain:
    def test_minimum_size(self):
        with pytest.raises(ProgramError):
            mp_chain(0)

    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("model_name", MODELS)
    def test_expectations_uniform_in_n(self, n, model_name):
        verdict = run_litmus(mp_chain(n), model_name)
        assert verdict.matches_expectation, (n, model_name)

    @pytest.mark.parametrize("n", [1, 2])
    def test_fenced_chain_forbidden_under_weak(self, n):
        assert not run_litmus(mp_chain(n, fenced=True), "weak").holds

    def test_chain_of_one_is_mp(self):
        chain = mp_chain(1)
        classic = get_test("MP")
        for model_name in MODELS:
            assert (
                run_litmus(chain, model_name).holds
                == run_litmus(classic, model_name).holds
            )


class TestIndependentWriters:
    def test_minimum_size(self):
        with pytest.raises(ProgramError):
            independent_writers(1)

    @pytest.mark.parametrize("readers", [2, 3])
    @pytest.mark.parametrize("model_name", MODELS)
    def test_expectations(self, readers, model_name):
        verdict = run_litmus(independent_writers(readers), model_name)
        assert verdict.matches_expectation, (readers, model_name)
