"""Tests for static fence repair, robustness certificates, portability.

Covers the PR-7 layer end-to-end: the all-minimum-covers solver, the
full-fence repair cross-validated against enumerative synthesis, the
acquire/release upgrade plans, SC-robustness certificates, lattice
portability, the store-to-load forwarding refinement (including its
non-transitivity), the fuzz oracle, and — property-based — the
byte-identity and subset-minimality of static repairs on
distinct-valued programs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fencesynth import behavior_signature, synthesize_fences
from repro.analysis.sites import FenceSite, insert_fences
from repro.analysis.static import (
    analyze_program,
    apply_repairs,
    certify_robustness,
    check_portability,
    repair_fences,
    repair_upgrades,
)
from repro.analysis.static.fencerepair import (
    RepairAction,
    _all_minimum_covers,
    _greedy_cover,
)
from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.testing.oracles import _distinct_valued, run_oracles


def build_forward_chain():
    """S x; L x; S y against a reader — MP-shaped: the same-address
    forwarding pair must NOT transitively order the two stores."""
    builder = ProgramBuilder("forward-chain")
    p0 = builder.thread("P0")
    p0.store("x", 1)
    p0.load("r1", "x")
    p0.store("y", 1)
    p1 = builder.thread("P1")
    p1.load("r2", "y")
    p1.load("r3", "x")
    return builder.build()


def sc_signature_of(program) -> frozenset:
    return behavior_signature(
        enumerate_behaviors(program, get_model("sc")), program.locations()
    )


def enumeratively_robust(program, model_name: str) -> bool:
    signature = behavior_signature(
        enumerate_behaviors(program, get_model(model_name)), program.locations()
    )
    return signature <= sc_signature_of(program)


class TestSolver:
    def test_empty_universe_has_the_empty_cover(self):
        best, solutions, _nodes, complete = _all_minimum_covers(0, [], [])
        assert (best, solutions, complete) == (0, [()], True)

    def test_uncoverable_element(self):
        best, solutions, _nodes, complete = _all_minimum_covers(
            2, [frozenset({0})], [1]
        )
        assert best is None and solutions == [] and complete

    def test_all_minimum_covers_found(self):
        # elements {0,1}; candidates: {0}, {1}, {0,1} — minima are
        # the pair {0}+{1} at cost 2 and the single {0,1} at cost 2.
        covers = [frozenset({0}), frozenset({1}), frozenset({0, 1})]
        best, solutions, _nodes, _ = _all_minimum_covers(2, covers, [1, 1, 2])
        assert best == 2
        assert solutions == [(0, 1), (2,)]

    def test_weights_prefer_cheap_cover(self):
        covers = [frozenset({0, 1}), frozenset({0}), frozenset({1})]
        best, solutions, _nodes, _ = _all_minimum_covers(2, covers, [5, 1, 1])
        assert best == 2
        assert solutions == [(1, 2)]

    def test_greedy_is_a_valid_cover(self):
        covers = [frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3})]
        chosen = _greedy_cover(4, covers, [1, 1, 1])
        covered = set().union(*(covers[index] for index in chosen))
        assert covered == {0, 1, 2, 3}

    def test_greedy_none_when_uncoverable(self):
        assert _greedy_cover(2, [frozenset({0})], [1]) is None


class TestRepairFences:
    def test_mp_weak_needs_both(self):
        repair = repair_fences(get_test("MP").program, "weak")
        assert repair.fence_count == 2
        assert repair.solutions == [(FenceSite("P0", 1), FenceSite("P1", 1))]
        assert repair.exact and repair.complete

    def test_mp_pso_writer_side_only(self):
        repair = repair_fences(get_test("MP").program, "pso")
        assert repair.solutions == [(FenceSite("P0", 1),)]

    def test_mp_tso_already_robust(self):
        repair = repair_fences(get_test("MP").program, "tso")
        assert repair.already_robust and repair.fence_count == 0

    def test_byte_identical_to_enumeration(self):
        for name, model in (("SB", "weak"), ("LB", "weak"), ("IRIW", "weak")):
            program = get_test(name).program
            static = repair_fences(program, model)
            enum = synthesize_fences(program, model, target="robust")
            assert enum.complete
            assert static.already_robust == enum.already_forbidden
            assert static.solutions == enum.solutions

    def test_greedy_upper_bound_attached(self):
        repair = repair_fences(get_test("SB").program, "weak")
        assert repair.greedy is not None
        assert set(repair.greedy) >= set(repair.solutions[0])


class TestForwardingRefinement:
    """The store-to-load forwarding (bypass-coherence) refinement: a
    same-address S→L pair is observably ordered as a *direct* pair,
    but must never extend a transitive chain."""

    def test_direct_same_address_pair_is_dead_under_tso(self):
        builder = ProgramBuilder("forward-direct")
        p0 = builder.thread("P0")
        p0.store("x", 1)
        p0.load("r1", "x")
        p1 = builder.thread("P1")
        p1.store("x", 2)
        p1.load("r2", "x")
        program = builder.build()
        certificate = certify_robustness(program, "tso")
        assert certificate.robust
        assert enumeratively_robust(program, "tso")

    def test_forwarding_does_not_compose_transitively(self):
        # Regression: S x → (forwarded) L x → (L→S always) S y must not
        # conclude S x → S y; the MP cycle through y is live under PSO.
        program = build_forward_chain()
        report = analyze_program(program, "pso", bypass_coherence=True)
        assert report.live_cycles
        static = repair_fences(program, "pso")
        assert not static.already_robust
        assert static.solutions == [
            (FenceSite("P0", 1),),
            (FenceSite("P0", 2),),
        ]
        enum = synthesize_fences(program, "pso", target="robust")
        assert enum.complete
        assert static.solutions == enum.solutions

    def test_forward_chain_robust_under_tso(self):
        # TSO keeps S→S ordered, so the same program is robust there.
        program = build_forward_chain()
        assert certify_robustness(program, "tso").robust
        assert enumeratively_robust(program, "tso")


class TestCertificates:
    def test_mp_weak_refuted_with_repairs(self):
        certificate = certify_robustness(get_test("MP").program, "weak")
        assert certificate.verdict == "not-robust"
        assert certificate.definite
        assert certificate.breaking_cycles
        assert certificate.repairs == [(FenceSite("P0", 1), FenceSite("P1", 1))]

    def test_robust_certificate_is_definite(self):
        certificate = certify_robustness(get_test("MP").program, "tso")
        assert certificate.verdict == "robust"
        assert certificate.definite
        assert certificate.repairs == []

    def test_summary_mentions_repairs(self):
        certificate = certify_robustness(get_test("SB").program, "weak")
        assert "not-robust" in certificate.summary()
        assert "P0@1" in certificate.summary()


class TestUpgrades:
    def test_mp_weak_release_acquire_plan(self):
        program = get_test("MP").program
        upgrades = repair_upgrades(program, "weak")
        assert upgrades.best_cost == 2
        plans = {
            frozenset((action.kind, action.thread, action.position) for action in plan)
            for plan in upgrades.solutions
        }
        assert frozenset({("release", "P0", 1), ("acquire", "P1", 0)}) in plans

    def test_applied_plan_is_enumeratively_robust(self):
        program = get_test("MP").program
        plan = (
            RepairAction("P0", 1, "release", 1),
            RepairAction("P1", 0, "acquire", 1),
        )
        repaired = apply_repairs(program, plan)
        assert repaired.threads[0].code[1].release
        assert repaired.threads[1].code[0].acquire
        signature = behavior_signature(
            enumerate_behaviors(repaired, get_model("weak")), program.locations()
        )
        assert signature <= sc_signature_of(program)

    def test_apply_repairs_inserts_fences(self):
        program = get_test("MP").program
        plan = (RepairAction("P0", 1, "fence", 1),)
        repaired = apply_repairs(program, plan)
        assert len(repaired.threads[0].code) == 3

    def test_already_robust_plan_is_empty(self):
        upgrades = repair_upgrades(get_test("MP").program, "tso")
        assert upgrades.already_robust and upgrades.best_cost == 0


class TestPortability:
    def test_mp_tso_down_the_lattice(self):
        report = check_portability(get_test("MP").program, verified_under="tso")
        assert [step.target_model for step in report.steps] == ["pso", "weak"]
        pso = report.step("pso")
        assert pso.verdict == "not-portable" and pso.definite
        assert pso.repairs == [(FenceSite("P0", 1),)]
        weak = report.step("weak")
        assert weak.repairs == [(FenceSite("P0", 1), FenceSite("P1", 1))]

    def test_portable_step(self):
        report = check_portability(get_test("MP+fences").program, verified_under="sc")
        assert all(step.portable for step in report.steps)

    def test_unknown_source_model_rejected(self):
        try:
            check_portability(get_test("MP").program, verified_under="weak-spec")
        except ValueError as error:
            assert "weak-spec" in str(error)
        else:
            raise AssertionError("expected ValueError")

    def test_step_lookup_raises_keyerror(self):
        report = check_portability(get_test("MP").program, verified_under="weak")
        try:
            report.step("pso")
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")


class TestOracle:
    def test_distinct_valued_rejects_initial_value_stores(self):
        builder = ProgramBuilder("coincidence")
        p0 = builder.thread("P0")
        p0.store("x", 0)  # writes x's initial value back
        program = builder.build()
        assert not _distinct_valued(program)

    def test_distinct_valued_rejects_duplicate_store_values(self):
        builder = ProgramBuilder("dup")
        p0 = builder.thread("P0")
        p0.store("x", 1)
        p1 = builder.thread("P1")
        p1.store("x", 1)
        assert not _distinct_valued(builder.build())

    def test_distinct_valued_accepts_mp(self):
        assert _distinct_valued(get_test("MP").program)

    def test_oracle_clean_on_library_programs(self):
        for name in ("MP", "SB", "2+2W"):
            program = get_test(name).program
            discrepancies, _skipped = run_oracles(
                program, names=("static-fence-repair",)
            )
            assert discrepancies == [], discrepancies


# -- property: static repairs work and are subset-minimal -------------


@st.composite
def distinct_valued_programs(draw):
    """Random 2-thread programs whose stores all write globally unique
    nonzero values, at most one store per location per thread — no
    value coincidences and no shadowed stores, so the static minimal
    sets are promised byte-identical to the enumerative ground truth
    (the ``_distinct_valued`` oracle gate, asserted below)."""
    builder = ProgramBuilder("distinct")
    value = 1
    register = 0
    for tid in range(2):
        thread = builder.thread(f"P{tid}")
        stored: set[str] = set()
        size = draw(st.integers(min_value=2, max_value=3))
        for _ in range(size):
            kind = draw(st.sampled_from(("store", "store", "load", "fence")))
            location = draw(st.sampled_from(("x", "y")))
            if kind == "store" and location not in stored:
                stored.add(location)
                thread.store(location, value)
                value += 1
            elif kind == "load" or kind == "store":
                register += 1
                thread.load(f"r{register}", location)
            else:
                thread.fence()
    return builder.build()


@given(distinct_valued_programs())
@settings(max_examples=25, deadline=None)
def test_static_repairs_work_and_are_subset_minimal(program):
    assert _distinct_valued(program)
    static = repair_fences(program, "weak")
    assert static.complete and static.exact
    enum = synthesize_fences(program, "weak", target="robust")
    assert enum.complete
    assert static.already_robust == enum.already_forbidden
    assert static.solutions == enum.solutions

    sc_signature = sc_signature_of(program)

    def robust_with(sites) -> bool:
        fenced = insert_fences(program, tuple(sites))
        result = enumerate_behaviors(fenced, get_model("weak"))
        assert result.complete
        return behavior_signature(result, program.locations()) <= sc_signature

    for solution in static.solutions[:3]:
        assert robust_with(solution)
        # Fences only remove behaviors, so it suffices to refute the
        # (n-1)-subsets: if one of those worked the search would have
        # stopped at the smaller size.
        for drop in range(len(solution)):
            subset = solution[:drop] + solution[drop + 1 :]
            assert not robust_with(subset)
