"""Unit tests for graph generation and dataflow execution (§4.1)."""

import pytest

from repro.errors import EnumerationError, ExecutionError
from repro.core.execution import Execution, instruction_operands
from repro.core.graph import EdgeKind
from repro.isa.dsl import ProgramBuilder
from repro.isa.instructions import Compute, Load, Store
from repro.isa.operands import Const, Reg
from repro.models.registry import get_model

from tests.conftest import build_branchy, build_loop, build_single_thread


def initial(program, model="weak", max_nodes=64):
    return Execution.initial(program, get_model(model), max_nodes)


class TestInstructionOperands:
    def test_canonical_orders(self):
        assert instruction_operands(Load(Reg("r1"), Const("x"))) == (Const("x"),)
        assert instruction_operands(Store(Const("x"), Reg("r1"))) == (
            Const("x"),
            Reg("r1"),
        )
        compute = Compute(Reg("r1"), "add", (Reg("r2"), Const(3)))
        assert instruction_operands(compute) == (Reg("r2"), Const(3))


class TestInitStores:
    def test_one_per_location_with_values(self, sb_program):
        execution = initial(sb_program)
        assert set(execution.init_nodes) == {"x", "y"}
        for location, nid in execution.init_nodes.items():
            node = execution.graph.node(nid)
            assert node.is_init and node.is_visible_store
            assert node.addr == location and node.stored == 0

    def test_init_precedes_every_thread_node(self, sb_program):
        execution = initial(sb_program)
        for node in execution.graph.nodes:
            if not node.is_init:
                for init_nid in execution.init_nodes.values():
                    assert execution.graph.before(init_nid, node.nid)

    def test_initial_memory_respected(self):
        builder = ProgramBuilder("init")
        builder.init("x", 42)
        builder.thread("T").load("r1", "x")
        execution = initial(builder.build())
        node = execution.graph.node(execution.init_nodes["x"])
        assert node.stored == 42


class TestGeneration:
    def test_straight_line_fully_generated(self, sb_program):
        execution = initial(sb_program)
        # 2 init + 4 instructions
        assert len(execution.graph) == 6

    def test_generation_stops_at_unresolved_branch(self):
        execution = initial(build_branchy())
        # P1: load, branch generated; store + final load NOT yet (branch
        # blocked on the unresolved load).
        p1_nodes = [n for n in execution.graph.nodes if n.tid == 1]
        assert len(p1_nodes) == 2
        assert execution.threads[1].waiting_branch is not None

    def test_branch_resolution_resumes_generation(self):
        execution = initial(build_branchy())
        (load,) = [n for n in execution.eligible_loads() if n.tid == 1]
        flag_store = [
            n for n in execution.graph.nodes if n.tid == 0 and n.writes_memory
        ][0]
        execution.resolve_load(load.nid, flag_store.nid)
        p1_nodes = [n for n in execution.graph.nodes if n.tid == 1]
        # flag=1 -> beqz not taken -> store + load generated
        assert len(p1_nodes) == 4

    def test_node_limit_guards_unbounded_loops(self):
        builder = ProgramBuilder("spin")
        t = builder.thread("T")
        t.label("top")
        t.jmp("top")
        with pytest.raises(EnumerationError):
            initial(builder.build(), max_nodes=8)


class TestDataflow:
    def test_alu_chain_computes(self):
        execution = initial(build_single_thread(), "sc")
        # resolve the first load (x) against the only candidate
        while not execution.completed():
            loads = execution.eligible_loads()
            assert loads, "dataflow stalled"
            from repro.core.candidates import candidate_stores

            load = loads[0]
            (store,) = candidate_stores(execution, load)
            execution.resolve_load(load.nid, store.nid)
        registers = execution.final_registers()
        assert registers[("T", "r1")] == 5
        assert registers[("T", "r2")] == 15
        assert registers[("T", "r3")] == 15

    def test_unwritten_register_reads_zero(self):
        builder = ProgramBuilder("zero")
        builder.thread("T").store("x", Reg("r9"))
        execution = initial(builder.build())
        store_node = [n for n in execution.graph.nodes if not n.is_init][0]
        assert store_node.executed and store_node.stored == 0

    def test_data_edges_recorded(self):
        execution = initial(build_single_thread(), "weak")
        nodes = [n for n in execution.graph.nodes if not n.is_init]
        load_x, add = nodes[1], nodes[2]
        assert execution.graph.edge_kinds(load_x.nid, add.nid) & EdgeKind.DATA

    def test_int_address_rejected(self):
        builder = ProgramBuilder("bad-addr")
        t = builder.thread("T")
        t.load("r1", "x")  # loads integer 0
        t.store("r1", 5)  # stores through it -> error
        execution = initial(builder.build())
        (load,) = execution.eligible_loads()
        with pytest.raises(ExecutionError):
            execution.resolve_load(load.nid, execution.init_nodes["x"])

    def test_unknown_location_rejected(self):
        builder = ProgramBuilder("bad-loc")
        builder.init("p", "nowhere")
        # 'nowhere' becomes a location via initial_memory scanning, so point
        # at something truly absent via arithmetic-free register defaulting:
        t = builder.thread("T")
        t.load("r1", "p")
        t.load("r2", "r1")
        execution = initial(builder.build())
        # resolving r1 against init gives "nowhere", which IS a location
        # (pointer values are scanned), so this one actually succeeds:
        (load,) = execution.eligible_loads()
        execution.resolve_load(load.nid, execution.init_nodes["p"])
        assert execution.graph.nodes[load.nid].value == "nowhere"


class TestTableEdges:
    def test_sc_orders_all_memory_ops(self, sb_program):
        execution = initial(sb_program, "sc")
        thread_nodes = [n for n in execution.graph.nodes if n.tid == 0]
        assert execution.graph.before(thread_nodes[0].nid, thread_nodes[1].nid)

    def test_weak_leaves_different_addresses_unordered(self, sb_program):
        execution = initial(sb_program, "weak")
        thread_nodes = [n for n in execution.graph.nodes if n.tid == 0]
        assert not execution.graph.ordered(thread_nodes[0].nid, thread_nodes[1].nid)

    def test_same_address_store_store_ordered_under_weak(self):
        builder = ProgramBuilder("ss")
        t = builder.thread("T")
        t.store("x", 1)
        t.store("x", 2)
        execution = initial(builder.build(), "weak")
        nodes = [n for n in execution.graph.nodes if not n.is_init]
        assert execution.graph.before(nodes[0].nid, nodes[1].nid)

    def test_fence_orders_across(self):
        builder = ProgramBuilder("fence")
        t = builder.thread("T")
        t.store("x", 1)
        t.fence()
        t.load("r1", "y")
        execution = initial(builder.build(), "weak")
        store, fence, load = [n for n in execution.graph.nodes if not n.is_init]
        assert execution.graph.before(store.nid, fence.nid)
        assert execution.graph.before(fence.nid, load.nid)
        assert execution.graph.before(store.nid, load.nid)

    def test_branch_store_ordering(self):
        """Stores are ordered after prior branches even once resolved —
        the control dependency reaches the store through the branch."""
        execution = initial(build_branchy())
        (load,) = [n for n in execution.eligible_loads() if n.tid == 1]
        flag_store = [
            n for n in execution.graph.nodes if n.tid == 0 and n.writes_memory
        ][0]
        execution.resolve_load(load.nid, flag_store.nid)
        p1 = [n for n in execution.graph.nodes if n.tid == 1]
        branch, store = p1[1], p1[2]
        assert execution.graph.before(branch.nid, store.nid)
        assert execution.graph.before(load.nid, store.nid)  # via the branch


class TestAliasEdges:
    def test_nonspeculative_addr_dependency(self):
        """§5.1: a later memory op depends on the producer of an earlier
        potentially-aliasing op's address."""
        builder = ProgramBuilder("alias")
        builder.init("p", "x")
        t = builder.thread("T")
        t.load("r1", "p")  # produces the address
        t.store("r1", 7)  # S through pointer
        t.load("r2", "y")  # potentially aliases the store
        execution = initial(builder.build(), "weak")
        nodes = [n for n in execution.graph.nodes if not n.is_init]
        pointer_load, _store, final_load = nodes
        assert execution.graph.edge_kinds(pointer_load.nid, final_load.nid) & EdgeKind.ADDR_DEP

    def test_speculative_mode_drops_addr_dependency(self):
        builder = ProgramBuilder("alias-spec")
        builder.init("p", "x")
        t = builder.thread("T")
        t.load("r1", "p")
        t.store("r1", 7)
        t.load("r2", "y")
        execution = initial(builder.build(), "weak-spec")
        nodes = [n for n in execution.graph.nodes if not n.is_init]
        pointer_load, _store, final_load = nodes
        kinds = execution.graph.edge_kinds(pointer_load.nid, final_load.nid)
        assert kinds is None or not (kinds & EdgeKind.ADDR_DEP)

    def test_same_addr_edge_inserted_when_addresses_resolve(self):
        builder = ProgramBuilder("alias-hit")
        builder.init("p", "y")
        t = builder.thread("T")
        t.load("r1", "p")
        t.store("r1", 7)  # resolves to y
        t.load("r2", "y")  # same address!
        execution = initial(builder.build(), "weak")
        (load,) = execution.eligible_loads()
        execution.resolve_load(load.nid, execution.init_nodes["p"])
        nodes = [n for n in execution.graph.nodes if not n.is_init]
        store, final_load = nodes[1], nodes[2]
        assert store.addr == "y"
        assert execution.graph.before(store.nid, final_load.nid)


class TestCopySemantics:
    def test_copy_isolates_state(self, sb_program):
        execution = initial(sb_program)
        duplicate = execution.copy()
        (load, *_) = duplicate.eligible_loads()
        duplicate.resolve_load(load.nid, duplicate.init_nodes[load.addr])
        original_node = execution.graph.node(load.nid)
        assert not original_node.executed
        assert execution.state_key() != duplicate.state_key()

    def test_loop_program_completes(self):
        execution = initial(build_loop())
        from repro.core.candidates import candidate_stores

        # Drive one arbitrary schedule to completion.
        while not execution.completed():
            loads = execution.eligible_loads()
            assert loads
            load = loads[0]
            stores = candidate_stores(execution, load)
            execution.resolve_load(load.nid, stores[-1].nid)
        assert all(node.executed for node in execution.graph.nodes)
