"""Cross-validation of the sharded parallel enumeration engine.

The correctness bar (ISSUE 4): the parallel engine must produce the
*identical* sorted execution set (Load–Store graphs) and register
outcomes as the sequential engine on the entire litmus library under
every model, deterministically for every worker count — plus budgets,
cancellation, and resumable partial results must keep working.
"""

import threading

import pytest

from repro.core.enumerate import (
    CancellationToken,
    EnumerationLimits,
    ExhaustionReason,
    ParallelEnumerationConfig,
    enumerate_behaviors,
    resume_enumeration,
)
from repro.isa.dsl import ProgramBuilder
from repro.litmus.library import all_tests, get_test
from repro.models.registry import get_model

MODELS = ("sc", "tso", "pso", "weak", "weak-spec")

#: Forces real sharding on even the smallest litmus tests — the default
#: warm-up budget would finish most of them sequentially.
TINY_WARMUP = {"warmup_behaviors": 4, "shards": 8}


def build_heavy3():
    """A 3-thread program whose behavior set far exceeds small budgets."""
    builder = ProgramBuilder("heavy3")
    w = builder.thread("W")
    w.store("x", 1)
    w.store("y", 1)
    p = builder.thread("P")
    p.load("r1", "x")
    p.load("r2", "y")
    p.store("z", 1)
    q = builder.thread("Q")
    q.load("r3", "z")
    q.load("r4", "y")
    q.load("r5", "x")
    return builder.build()


def assert_identical(sequential, parallel_result):
    assert parallel_result.complete, parallel_result.status
    assert [e.loadstore_key() for e in parallel_result.executions] == [
        e.loadstore_key() for e in sequential.executions
    ]
    assert parallel_result.register_outcomes() == sequential.register_outcomes()


@pytest.fixture(scope="module")
def baseline():
    """Sequential-engine results for the whole library × every model."""
    return {
        (test.name, model_name): enumerate_behaviors(
            test.program, get_model(model_name)
        )
        for test in all_tests()
        for model_name in MODELS
    }


@pytest.fixture(scope="module")
def pools():
    """One shared process pool per tested worker count (pool start-up is
    the dominant cost of a small parallel enumeration, so the library
    sweeps reuse a single pool through ``ParallelEnumerationConfig.executor``)."""
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=2) as two, ProcessPoolExecutor(
        max_workers=4
    ) as four:
        yield {2: two, 4: four}


class TestFullLibraryCrossValidation:
    @pytest.mark.parametrize("model_name", MODELS)
    def test_workers_1_inline(self, model_name, baseline):
        config = ParallelEnumerationConfig(workers=1, **TINY_WARMUP)
        for test in all_tests():
            result = enumerate_behaviors(
                test.program, get_model(model_name), parallel=config
            )
            assert_identical(baseline[(test.name, model_name)], result)

    @pytest.mark.parametrize("workers", (2, 4))
    @pytest.mark.parametrize("model_name", MODELS)
    def test_workers_pooled(self, workers, model_name, baseline, pools):
        config = ParallelEnumerationConfig(
            workers=workers, executor=pools[workers], **TINY_WARMUP
        )
        for test in all_tests():
            result = enumerate_behaviors(
                test.program, get_model(model_name), parallel=config
            )
            assert_identical(baseline[(test.name, model_name)], result)

    def test_digest_dedup_matches_exact_dedup(self, baseline):
        """The blake2b-digest dedup set admits exactly the same behavior
        set as full canonical keys (no collisions on the library)."""
        for test in all_tests():
            exact = enumerate_behaviors(
                test.program, get_model("weak"), dedup_exact=True
            )
            assert_identical(baseline[(test.name, "weak")], exact)


class TestParallelBudgets:
    def test_behavior_budget_is_exact(self):
        limits = EnumerationLimits(max_behaviors=50)
        config = ParallelEnumerationConfig(workers=2, **TINY_WARMUP)
        result = enumerate_behaviors(
            build_heavy3(), get_model("weak"), limits, parallel=config
        )
        assert result.complete is False
        assert result.reason is ExhaustionReason.BEHAVIOR_BUDGET
        assert result.stats.explored <= 50
        assert result.checkpoint is not None

    def test_parallel_partial_resumes_sequentially(self):
        program = build_heavy3()
        sequential = enumerate_behaviors(program, get_model("weak"))
        config = ParallelEnumerationConfig(workers=2, **TINY_WARMUP)
        partial = enumerate_behaviors(
            program,
            get_model("weak"),
            EnumerationLimits(max_behaviors=50),
            parallel=config,
        )
        resumed = resume_enumeration(partial.checkpoint, EnumerationLimits())
        assert_identical(sequential, resumed)

    def test_sequential_partial_resumes_in_parallel(self):
        program = build_heavy3()
        sequential = enumerate_behaviors(program, get_model("weak"))
        partial = enumerate_behaviors(
            program, get_model("weak"), EnumerationLimits(max_behaviors=30)
        )
        assert partial.complete is False
        config = ParallelEnumerationConfig(workers=2, **TINY_WARMUP)
        resumed = resume_enumeration(
            partial.checkpoint, EnumerationLimits(), parallel=config
        )
        assert_identical(sequential, resumed)

    def test_strict_mode_raises(self):
        from repro.errors import EnumerationError

        config = ParallelEnumerationConfig(workers=2, **TINY_WARMUP)
        with pytest.raises(EnumerationError):
            enumerate_behaviors(
                build_heavy3(),
                get_model("weak"),
                EnumerationLimits(max_behaviors=50),
                strict=True,
                parallel=config,
            )

    def test_deadline_returns_partial(self):
        config = ParallelEnumerationConfig(workers=2, **TINY_WARMUP)
        result = enumerate_behaviors(
            build_heavy3(),
            get_model("weak"),
            EnumerationLimits(deadline_seconds=1e-6),
            parallel=config,
        )
        assert result.complete is False
        assert result.reason is ExhaustionReason.DEADLINE
        assert result.checkpoint is not None


class _CancelAfterPolls(CancellationToken):
    """Fault injector: reports cancelled after a fixed number of polls,
    simulating a supervisor that pulls the plug mid-search."""

    def __init__(self, polls: int) -> None:
        super().__init__()
        self._polls = polls

    @property
    def cancelled(self) -> bool:
        if self._polls > 0:
            self._polls -= 1
            return False
        return True


class TestCancellationFaults:
    def test_pre_cancelled_token(self):
        token = CancellationToken()
        token.cancel()
        config = ParallelEnumerationConfig(workers=2, **TINY_WARMUP)
        result = enumerate_behaviors(
            build_heavy3(), get_model("weak"), parallel=config, token=token
        )
        assert result.complete is False
        assert result.reason is ExhaustionReason.CANCELLED
        assert result.checkpoint is not None

    def test_cancel_between_shards_merges_valid_partial(self):
        """Deterministic mid-shard fault: the token fires after the
        warm-up's polls, so the inline driver cancels with some shards
        done and some never started — the merged partial must be a valid
        resumable checkpoint reaching the full behavior set."""
        program = build_heavy3()
        sequential = enumerate_behaviors(program, get_model("weak"))
        token = _CancelAfterPolls(polls=6)  # survives the 4-pop warm-up
        config = ParallelEnumerationConfig(workers=1, **TINY_WARMUP)
        result = enumerate_behaviors(
            program, get_model("weak"), parallel=config, token=token
        )
        assert result.complete is False
        assert result.reason is ExhaustionReason.CANCELLED
        assert result.checkpoint is not None
        assert result.checkpoint.worklist  # unfinished shards preserved
        resumed = resume_enumeration(result.checkpoint, EnumerationLimits())
        assert_identical(sequential, resumed)

    def test_cancel_mid_pool_run_then_resume(self, pools):
        """Asynchronous fault on a real pool: cancel ~immediately after
        dispatch; whatever merged state comes back must resume to the
        exact sequential behavior set (possibly over several resumes)."""
        program = build_heavy3()
        sequential = enumerate_behaviors(program, get_model("weak"))
        token = CancellationToken()
        config = ParallelEnumerationConfig(
            workers=2, executor=pools[2], **TINY_WARMUP
        )
        timer = threading.Timer(0.01, token.cancel)
        timer.start()
        try:
            result = enumerate_behaviors(
                program, get_model("weak"), parallel=config, token=token
            )
        finally:
            timer.cancel()
        if result.complete:  # the pool won the race — still must be exact
            assert_identical(sequential, result)
            return
        assert result.reason is ExhaustionReason.CANCELLED
        resumed = resume_enumeration(result.checkpoint, EnumerationLimits())
        assert_identical(sequential, resumed)


class TestDeterminism:
    @pytest.mark.parametrize("test_name", ("IRIW", "SB", "MP+addr"))
    def test_worker_count_does_not_change_results(self, test_name, pools):
        """The shard count (not the worker count) fixes the merge, so
        1, 2 and 4 workers return byte-identical execution orders."""
        program = get_test(test_name).program
        model = get_model("weak")
        runs = []
        for workers in (1, 2, 4):
            config = ParallelEnumerationConfig(
                workers=workers,
                executor=pools.get(workers),
                **TINY_WARMUP,
            )
            runs.append(enumerate_behaviors(program, model, parallel=config))
        keys = [[e.loadstore_key() for e in run.executions] for run in runs]
        assert keys[0] == keys[1] == keys[2]
        assert runs[0].register_outcomes() == runs[1].register_outcomes()
        assert runs[1].register_outcomes() == runs[2].register_outcomes()
