"""Tests for the command-line interface."""


from repro.cli import main


class TestModels:
    def test_listing(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "weak" in out and "tso" in out

    def test_table(self, capsys):
        assert main(["models", "--table", "weak"]) == 0
        out = capsys.readouterr().out
        assert "x != y" in out

    def test_unknown_model(self, capsys):
        assert main(["models", "--table", "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_library_test(self, capsys):
        assert main(["run", "SB", "-m", "sc"]) == 0
        out = capsys.readouterr().out
        assert "SB under sc" in out and "No" in out

    def test_multiple_models(self, capsys):
        assert main(["run", "SB", "-m", "sc", "-m", "weak"]) == 0
        out = capsys.readouterr().out
        assert "under sc" in out and "under weak" in out

    def test_default_model_is_weak(self, capsys):
        assert main(["run", "SB"]) == 0
        assert "under weak" in capsys.readouterr().out

    def test_file_input(self, tmp_path, capsys):
        source = tmp_path / "t.litmus"
        source.write_text(
            "test tiny\nthread P0\n  S x, 1\n  r1 = L x\nexists (P0:r1=1)\n"
        )
        assert main(["run", str(source), "-m", "sc"]) == 0
        assert "tiny under sc" in capsys.readouterr().out

    def test_unknown_test(self, capsys):
        assert main(["run", "NOPE"]) == 2
        assert "library tests" in capsys.readouterr().err

    def test_dot_output(self, tmp_path, capsys):
        target = tmp_path / "g.dot"
        assert main(["run", "SB", "-m", "weak", "--dot", str(target)]) == 0
        assert target.read_text().startswith("digraph")


class TestEnumerate:
    def test_outcome_listing(self, capsys):
        assert main(["enumerate", "MP", "-m", "weak"]) == 0
        out = capsys.readouterr().out
        assert "4 distinct executions" in out
        assert "P1:r1=1  P1:r2=0" in out

    def test_graph_printing(self, capsys):
        assert main(["enumerate", "SB", "-m", "sc", "--graphs", "1"]) == 0
        assert "thread 0:" in capsys.readouterr().out

    def test_missing_test_and_resume_is_an_error(self, capsys):
        assert main(["enumerate", "-m", "weak"]) == 2
        assert "error:" in capsys.readouterr().err


class TestResilienceFlags:
    def test_budgeted_enumerate_reports_partial(self, capsys):
        assert main(["enumerate", "WRC", "-m", "weak", "--max-behaviors", "5"]) == 0
        assert "partial (behavior-budget)" in capsys.readouterr().out

    def test_strict_budget_raises_to_error_exit(self, capsys):
        code = main(
            ["enumerate", "WRC", "-m", "weak", "--max-behaviors", "5", "--strict"]
        )
        assert code == 2
        assert "exceeded 5 explored behaviors" in capsys.readouterr().err

    def test_checkpoint_and_resume_roundtrip(self, tmp_path, capsys):
        checkpoint = tmp_path / "wrc.ckpt"
        assert (
            main(
                [
                    "enumerate",
                    "WRC",
                    "-m",
                    "weak",
                    "--max-behaviors",
                    "5",
                    "--checkpoint",
                    str(checkpoint),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote checkpoint" in out
        assert checkpoint.exists()
        assert main(["enumerate", "--resume", str(checkpoint)]) == 0
        resumed = capsys.readouterr().out
        assert "[complete]" in resumed
        assert "8 distinct executions" in resumed

    def test_deadline_flag_on_run(self, capsys):
        assert main(["run", "SB", "-m", "sc", "--deadline", "1000"]) == 0
        assert "PARTIAL" not in capsys.readouterr().out


class TestMatrix:
    def test_subset(self, capsys):
        assert main(["matrix", "--tests", "SB,MP", "--models", "sc,weak"]) == 0
        out = capsys.readouterr().out
        assert "SB" in out and "MP" in out


class TestWellsync:
    def test_racy_exit_code(self, capsys):
        assert main(["wellsync", "MP", "-m", "weak", "--sync", "flag"]) == 1
        assert "RACY" in capsys.readouterr().out

    def test_sync_everything(self, capsys):
        assert main(["wellsync", "MP", "-m", "weak", "--sync", "flag,x"]) == 0
        assert "WELL SYNCHRONIZED" in capsys.readouterr().out
