"""Unit + property tests for the execution graph engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CycleError, GraphError
from repro.core.graph import EdgeKind, ExecutionGraph, iter_bits
from repro.core.node import Node
from repro.isa.instructions import OpClass


def make_node(nid: int, op_class: OpClass = OpClass.COMPUTE) -> Node:
    return Node(nid=nid, tid=0, index=nid, instruction=None, op_class=op_class)


def graph_with(n: int) -> ExecutionGraph:
    graph = ExecutionGraph()
    for i in range(n):
        graph.add_node(make_node(i))
    return graph


class TestIterBits:
    def test_empty(self):
        assert list(iter_bits(0)) == []

    def test_bits_in_order(self):
        assert list(iter_bits(0b10110)) == [1, 2, 4]

    def test_large_positions(self):
        assert list(iter_bits(1 << 200)) == [200]


class TestBasicEdges:
    def test_add_node_checks_id(self):
        graph = ExecutionGraph()
        with pytest.raises(GraphError):
            graph.add_node(make_node(3))

    def test_edge_creates_order(self):
        graph = graph_with(3)
        assert graph.add_edge(0, 1, EdgeKind.PROGRAM)
        assert graph.before(0, 1)
        assert not graph.before(1, 0)
        assert not graph.ordered(0, 2)

    def test_transitivity(self):
        graph = graph_with(3)
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        graph.add_edge(1, 2, EdgeKind.DATA)
        assert graph.before(0, 2)

    def test_redundant_edge_returns_false(self):
        graph = graph_with(3)
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        graph.add_edge(1, 2, EdgeKind.PROGRAM)
        assert graph.add_edge(0, 2, EdgeKind.ATOMICITY) is False
        # but its kind is still recorded
        assert graph.edge_kinds(0, 2) == EdgeKind.ATOMICITY

    def test_self_edge_is_cycle(self):
        graph = graph_with(1)
        with pytest.raises(CycleError):
            graph.add_edge(0, 0, EdgeKind.PROGRAM)

    def test_direct_cycle_detected(self):
        graph = graph_with(2)
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        with pytest.raises(CycleError):
            graph.add_edge(1, 0, EdgeKind.PROGRAM)

    def test_long_cycle_detected(self):
        graph = graph_with(4)
        for u, v in ((0, 1), (1, 2), (2, 3)):
            graph.add_edge(u, v, EdgeKind.PROGRAM)
        with pytest.raises(CycleError):
            graph.add_edge(3, 0, EdgeKind.ATOMICITY)

    def test_kind_merging(self):
        graph = graph_with(2)
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        graph.add_edge(0, 1, EdgeKind.SOURCE)
        assert graph.edge_kinds(0, 1) == EdgeKind.PROGRAM | EdgeKind.SOURCE

    def test_unknown_node_rejected(self):
        graph = graph_with(2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 5, EdgeKind.PROGRAM)
        with pytest.raises(GraphError):
            graph.before(0, 9)


class TestBypassEdges:
    def test_bypass_does_not_order(self):
        graph = graph_with(2)
        graph.add_edge(0, 1, EdgeKind.BYPASS)
        assert not graph.ordered(0, 1)
        assert (0, 1) in graph.bypass_edges()

    def test_bypass_allows_reverse_real_edge(self):
        """A grey edge must not block a real edge in the other direction."""
        graph = graph_with(2)
        graph.add_edge(0, 1, EdgeKind.BYPASS)
        graph.add_edge(1, 0, EdgeKind.ATOMICITY)
        assert graph.before(1, 0)

    def test_bypass_reported_by_edges_iterator(self):
        graph = graph_with(2)
        graph.add_edge(0, 1, EdgeKind.BYPASS)
        assert (0, 1, EdgeKind.BYPASS) in list(graph.edges())


class TestQueries:
    def test_ancestors_descendants(self):
        graph = graph_with(4)
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        graph.add_edge(1, 3, EdgeKind.PROGRAM)
        graph.add_edge(2, 3, EdgeKind.PROGRAM)
        assert graph.ancestors(3) == [0, 1, 2]
        assert graph.descendants(0) == [1, 3]

    def test_unordered_pairs(self):
        graph = graph_with(3)
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        assert set(graph.unordered_pairs()) == {(0, 2), (1, 2)}

    def test_topological_order_is_linear_extension(self):
        graph = graph_with(5)
        edges = [(0, 2), (2, 4), (1, 2), (3, 4)]
        for u, v in edges:
            graph.add_edge(u, v, EdgeKind.PROGRAM)
        order = graph.topological_order()
        position = {n: i for i, n in enumerate(order)}
        for u, v in edges:
            assert position[u] < position[v]

    def test_reachability_pairs(self):
        graph = graph_with(3)
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        graph.add_edge(1, 2, EdgeKind.PROGRAM)
        assert graph.reachability_pairs() == frozenset({(0, 1), (1, 2), (0, 2)})


class TestCopy:
    def test_copy_is_independent(self):
        graph = graph_with(3)
        graph.add_edge(0, 1, EdgeKind.PROGRAM)
        dup = graph.copy()
        dup.add_edge(1, 2, EdgeKind.PROGRAM)
        dup.nodes[0].executed = True
        assert not graph.before(1, 2)
        assert not graph.nodes[0].executed
        assert dup.before(0, 2)


@st.composite
def random_dag_edges(draw):
    """Random edge sets over nodes 0..n-1, oriented low->high (acyclic)."""
    n = draw(st.integers(min_value=2, max_value=12))
    pairs = [(u, v) for v in range(n) for u in range(v)]
    chosen = draw(st.lists(st.sampled_from(pairs), max_size=30))
    return n, chosen


class TestReachabilityProperty:
    @given(random_dag_edges())
    @settings(max_examples=200, deadline=None)
    def test_bitsets_match_networkx(self, data):
        """The incremental bitsets agree with networkx's transitive closure."""
        import networkx as nx

        n, edges = data
        graph = graph_with(n)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        for u, v in edges:
            graph.add_edge(u, v, EdgeKind.PROGRAM)
            nxg.add_edge(u, v)
        for v in range(n):
            expected = set(nx.ancestors(nxg, v))
            assert set(graph.ancestors(v)) == expected
            assert set(graph.descendants(v)) == set(nx.descendants(nxg, v))
        graph.verify_consistency()

    @given(random_dag_edges())
    @settings(max_examples=100, deadline=None)
    def test_random_insertion_order_same_reachability(self, data):
        """Reachability is independent of edge insertion order."""
        n, edges = data
        forward = graph_with(n)
        backward = graph_with(n)
        for u, v in edges:
            forward.add_edge(u, v, EdgeKind.PROGRAM)
        for u, v in reversed(edges):
            backward.add_edge(u, v, EdgeKind.PROGRAM)
        assert forward.reachability_pairs() == backward.reachability_pairs()
