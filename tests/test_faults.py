"""Fault-injection suite: seeded engine faults must never escape the
enumerator, corrupt its bookkeeping, or invent behaviors."""

import pytest

from repro.errors import AtomicityViolation, CycleError
from repro.core.enumerate import enumerate_behaviors
from repro.core.graph import ExecutionGraph
from repro.models.registry import get_model
from repro.testing import (
    FaultInjector,
    InjectedAtomicityViolation,
    InjectedCycleError,
    InjectedMemoryError,
    inject_faults,
)

from tests.conftest import build_mp, build_sb


class TestInjectedExceptionTypes:
    def test_injected_faults_are_engine_types(self):
        """The injector raises the engine's own failure types, so the
        rollback paths treat them identically to organic failures."""
        assert issubclass(InjectedCycleError, CycleError)
        assert issubclass(InjectedAtomicityViolation, AtomicityViolation)
        assert issubclass(InjectedMemoryError, MemoryError)
        assert InjectedCycleError("graph").transient
        assert InjectedMemoryError("resolve").transient

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(kinds=("segfault",))
        with pytest.raises(ValueError):
            FaultInjector(sites=("network",))


class TestDeterminism:
    def test_same_seed_same_faults(self):
        program = build_sb()
        weak = get_model("weak")
        runs = []
        for _ in range(2):
            with inject_faults(seed=42, rate=0.1) as injector:
                result = enumerate_behaviors(program, weak)
            runs.append((dict(injector.stats.injected), result.register_outcomes()))
        assert runs[0] == runs[1]

    def test_patching_is_reversible(self):
        original = ExecutionGraph.add_edge
        with inject_faults(seed=0, rate=1.0):
            assert ExecutionGraph.add_edge is not original
        assert ExecutionGraph.add_edge is original
        # the engine works normally again
        assert len(enumerate_behaviors(build_sb(), get_model("weak"))) == 4


class TestTwoHundredSeededRuns:
    """The ISSUE acceptance bar: 200 seeded runs with injected
    graph/closure/resolution faults all terminate with either a complete
    result or a labeled partial result — never an unhandled exception."""

    def test_sb_weak_200_seeds(self):
        program = build_sb()
        weak = get_model("weak")
        clean = enumerate_behaviors(program, weak).register_outcomes()
        saw_injection = False
        for seed in range(200):
            with inject_faults(seed=seed, rate=0.05) as injector:
                result = enumerate_behaviors(program, weak)
            saw_injection |= injector.stats.total_injected > 0
            assert result.complete or result.reason is not None, seed
            assert result.stats.consistent(), (seed, result.stats)
            # faults only prune branches: no invented behaviors
            assert result.register_outcomes() <= clean, seed
            # kept executions are genuinely finished
            assert all(e.completed() for e in result.executions), seed
        assert saw_injection, "the sweep never injected a fault"

    def test_rollback_faults_leave_complete_results(self):
        """Cycle/atomicity faults hit branches the enumerator already
        rolls back, so the search still terminates (complete), only with
        possibly fewer behaviors."""
        program = build_mp()
        weak = get_model("weak")
        for seed in range(50):
            with inject_faults(
                seed=seed, rate=0.1, kinds=("cycle", "atomicity")
            ) as injector:
                result = enumerate_behaviors(program, weak)
            assert result.complete, seed
            if injector.stats.total_injected:
                assert result.stats.rolled_back > 0, seed

    def test_memory_faults_degrade_with_label(self):
        """An allocation failure mid-branch stops the search with an
        honestly-labeled, resumable partial result."""
        program = build_sb()
        weak = get_model("weak")
        labelled = 0
        for seed in range(50):
            with inject_faults(seed=seed, rate=0.2, kinds=("memory",)) as injector:
                result = enumerate_behaviors(program, weak)
            if injector.stats.total_injected:
                assert not result.complete, seed
                assert result.reason is not None, seed
                assert result.checkpoint is not None, seed
                labelled += 1
        assert labelled > 0

    def test_memory_fault_checkpoint_resumes_clean(self):
        """After the fault passes, resuming the checkpoint reaches the
        full behavior set."""
        from repro.core.enumerate import resume_enumeration

        program = build_sb()
        weak = get_model("weak")
        clean = enumerate_behaviors(program, weak).register_outcomes()
        with inject_faults(seed=3, rate=0.3, kinds=("memory",)) as injector:
            partial = enumerate_behaviors(program, weak)
        assert injector.stats.total_injected > 0 and not partial.complete
        resumed = resume_enumeration(partial.checkpoint)
        assert resumed.complete
        assert resumed.register_outcomes() == clean

    def test_strict_mode_raises_on_memory_fault(self):
        from repro.errors import EnumerationError

        program = build_sb()
        weak = get_model("weak")
        with inject_faults(seed=3, rate=0.3, kinds=("memory",)):
            with pytest.raises(EnumerationError):
                enumerate_behaviors(program, weak, strict=True)

    def test_max_faults_cap(self):
        with inject_faults(seed=1, rate=1.0, max_faults=2) as injector:
            enumerate_behaviors(build_sb(), get_model("weak"))
        assert injector.stats.total_injected <= 2
