"""Tests for the Shasha–Snir delay-set analysis."""

import pytest
from hypothesis import given, settings

from repro.analysis.compare import check_robustness
from repro.analysis.delays import DelayPair, delay_set, fence_delays, find_critical_cycles
from repro.errors import ProgramError
from repro.isa.dsl import ProgramBuilder
from repro.litmus.library import get_test

from tests.conftest import build_branchy
from tests.test_properties import small_programs


class TestCriticalCycles:
    def test_sb_cycle(self):
        report = delay_set(get_test("SB").program)
        assert len(report.critical_cycles) == 1
        assert set(report.delays) == {
            DelayPair("P0", 0, 1),
            DelayPair("P1", 0, 1),
        }

    def test_iriw_cycle_spans_four_threads(self):
        report = delay_set(get_test("IRIW").program)
        (cycle,) = report.critical_cycles
        assert len({access.thread for access in cycle}) == 4
        assert set(report.delays) == {
            DelayPair("P2", 0, 1),
            DelayPair("P3", 0, 1),
        }

    def test_corr_same_location_cycle(self):
        report = delay_set(get_test("CoRR").program)
        assert report.delays == (DelayPair("P1", 0, 1),)

    def test_single_thread_no_cycles(self):
        builder = ProgramBuilder("solo")
        thread = builder.thread("T")
        thread.store("x", 1)
        thread.load("r1", "x")
        assert find_critical_cycles(builder.build()) == []

    def test_no_conflicts_no_cycles(self):
        builder = ProgramBuilder("disjoint")
        builder.thread("A").store("x", 1)
        builder.thread("B").store("y", 1)
        assert find_critical_cycles(builder.build()) == []

    def test_existing_fences_filter_delays(self):
        report = delay_set(get_test("SB+fences").program)
        assert report.delays == ()
        assert len(report.critical_cycles) == 1  # the cycle exists, enforced

    def test_branchy_program_rejected(self):
        with pytest.raises(ProgramError):
            delay_set(build_branchy())

    def test_pointer_program_rejected(self):
        builder = ProgramBuilder("ptr")
        builder.init("p", "x")
        thread = builder.thread("T")
        thread.load("r1", "p")
        thread.store("r1", 1)
        with pytest.raises(ProgramError):
            delay_set(builder.build())


class TestFencingTheorem:
    @pytest.mark.parametrize("name", ["SB", "MP", "LB", "IRIW", "R", "S", "2+2W", "CoRR", "WRC"])
    def test_fencing_delays_restores_robustness(self, name):
        program = get_test(name).program
        fenced = fence_delays(program)
        assert check_robustness(fenced, "weak").robust

    def test_delays_necessary_for_sb(self):
        assert not check_robustness(get_test("SB").program, "weak").robust

    @given(small_programs())
    @settings(max_examples=25, deadline=None)
    def test_property_fenced_delays_robust(self, program):
        """The Shasha–Snir theorem on random straight-line programs:
        fencing every delay pair yields WEAK behavior == SC behavior."""
        fenced = fence_delays(program)
        assert check_robustness(fenced, "weak").robust
