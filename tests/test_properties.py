"""Property-based tests over random small programs (hypothesis).

These are the framework's global invariants:

1. axiomatic SC ≡ the interleaving machine,
2. axiomatic TSO ≡ the FIFO store-buffer machine,
3. every enumerated execution of a store-atomic model is serializable
   and passes the declarative Store Atomicity check,
4. model strength: SC ⊆ TSO ⊆ PSO ⊆ WEAK on outcome sets,
5. enumeration is deterministic (same program → same behavior set).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atomicity import check_store_atomicity
from repro.core.enumerate import enumerate_behaviors
from repro.core.serialization import find_serialization
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model
from repro.operational.sc import run_sc
from repro.operational.storebuffer import run_pso, run_tso

_LOCATIONS = ("x", "y")


@st.composite
def small_programs(draw):
    """Random 2-thread programs over locations x/y with stores, loads,
    fences and the occasional atomic exchange."""
    program = ProgramBuilder("random")
    register = 0
    for tid in range(2):
        thread = program.thread(f"P{tid}")
        size = draw(st.integers(min_value=1, max_value=3))
        for _ in range(size):
            kind = draw(
                st.sampled_from(("store", "store", "load", "load", "fence", "xchg"))
            )
            location = draw(st.sampled_from(_LOCATIONS))
            if kind == "store":
                thread.store(location, draw(st.integers(min_value=1, max_value=3)))
            elif kind == "load":
                register += 1
                thread.load(f"r{register}", location)
            elif kind == "xchg":
                register += 1
                thread.xchg(f"r{register}", location, draw(st.integers(min_value=4, max_value=6)))
            else:
                thread.fence()
    return program.build()


@given(small_programs())
@settings(max_examples=60, deadline=None)
def test_axiomatic_sc_equals_interleaving(program):
    axiomatic = enumerate_behaviors(program, get_model("sc")).register_outcomes()
    assert axiomatic == run_sc(program).outcomes


@given(small_programs())
@settings(max_examples=60, deadline=None)
def test_axiomatic_tso_equals_store_buffer(program):
    axiomatic = enumerate_behaviors(program, get_model("tso")).register_outcomes()
    assert axiomatic == run_tso(program).outcomes


@given(small_programs())
@settings(max_examples=30, deadline=None)
def test_axiomatic_pso_equals_relaxed_buffer(program):
    axiomatic = enumerate_behaviors(program, get_model("pso")).register_outcomes()
    assert axiomatic == run_pso(program).outcomes


@given(small_programs())
@settings(max_examples=40, deadline=None)
def test_weak_executions_store_atomic_and_serializable(program):
    result = enumerate_behaviors(program, get_model("weak"))
    assert result.executions
    for execution in result.executions:
        assert execution.completed()
        assert check_store_atomicity(execution.graph) == []
        assert find_serialization(execution) is not None


@given(small_programs())
@settings(max_examples=40, deadline=None)
def test_model_strength_chain(program):
    outcomes = {
        name: enumerate_behaviors(program, get_model(name)).register_outcomes()
        for name in ("sc", "tso", "pso", "weak")
    }
    assert outcomes["sc"] <= outcomes["tso"]
    assert outcomes["tso"] <= outcomes["pso"]
    assert outcomes["pso"] <= outcomes["weak"]


@given(small_programs())
@settings(max_examples=20, deadline=None)
def test_enumeration_deterministic(program):
    first = enumerate_behaviors(program, get_model("weak"))
    second = enumerate_behaviors(program, get_model("weak"))
    assert first.register_outcomes() == second.register_outcomes()
    assert [e.loadstore_key() for e in first.executions] == [
        e.loadstore_key() for e in second.executions
    ]


@given(small_programs())
@settings(max_examples=30, deadline=None)
def test_speculation_only_adds_behaviors(program):
    """On pointer-free programs, aliasing speculation is inert: the
    behavior sets must be *equal*, not merely included."""
    plain = enumerate_behaviors(program, get_model("weak")).register_outcomes()
    spec = enumerate_behaviors(program, get_model("weak-spec")).register_outcomes()
    assert plain == spec
