"""Unit tests for the candidates(L) computation."""

from repro.core.candidates import candidate_stores
from repro.core.execution import Execution
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model



def initial(program, model_name="weak"):
    return Execution.initial(program, get_model(model_name))


def values(execution, load):
    return sorted(store.stored for store in candidate_stores(execution, load))


class TestBasicCandidates:
    def test_init_store_is_always_a_candidate(self, sb_program):
        execution = initial(sb_program)
        for load in execution.eligible_loads():
            assert 0 in values(execution, load)

    def test_sb_loads_see_init_and_remote(self, sb_program):
        """Under WEAK each SB load may observe init or the remote store —
        and its own thread's store to the *other* location never appears."""
        execution = initial(sb_program)
        for load in execution.eligible_loads():
            assert values(execution, load) == [0, 1]

    def test_sc_load_after_own_store_sees_only_it(self):
        builder = ProgramBuilder("own")
        t = builder.thread("T")
        t.store("x", 7)
        t.load("r1", "x")
        execution = initial(builder.build(), "sc")
        (load,) = execution.eligible_loads()
        assert values(execution, load) == [7]

    def test_overwritten_store_excluded(self):
        builder = ProgramBuilder("cover")
        t = builder.thread("T")
        t.store("x", 1)
        t.store("x", 2)
        t.load("r1", "x")
        execution = initial(builder.build())
        (load,) = execution.eligible_loads()
        assert values(execution, load) == [2]

    def test_never_empty_for_eligible_loads(self, mp_program):
        execution = initial(mp_program)
        for load in execution.eligible_loads():
            assert candidate_stores(execution, load)


class TestEligibility:
    def test_dependent_load_not_eligible(self):
        """A load whose address comes from another load waits for it."""
        builder = ProgramBuilder("ptr")
        builder.init("p", "x")
        t = builder.thread("T")
        t.load("r1", "p")
        t.load("r2", "r1")
        execution = initial(builder.build())
        eligible = execution.eligible_loads()
        assert [node.index for node in eligible] == [0]

    def test_fence_ordered_load_not_eligible_before_predecessor(self):
        builder = ProgramBuilder("fenced")
        t = builder.thread("T")
        t.load("r1", "x")
        t.fence()
        t.load("r2", "y")
        execution = initial(builder.build())
        eligible = execution.eligible_loads()
        assert [node.index for node in eligible] == [0]

    def test_weak_allows_both_unordered_loads(self):
        builder = ProgramBuilder("both")
        t = builder.thread("T")
        t.load("r1", "x")
        t.load("r2", "y")
        execution = initial(builder.build())
        assert len(execution.eligible_loads()) == 2

    def test_sc_serializes_load_eligibility(self):
        builder = ProgramBuilder("both-sc")
        t = builder.thread("T")
        t.load("r1", "x")
        t.load("r2", "y")
        execution = initial(builder.build(), "sc")
        assert [node.index for node in execution.eligible_loads()] == [0]


class TestBypassCandidates:
    def test_only_newest_local_store_forwardable(self):
        builder = ProgramBuilder("fwd")
        t = builder.thread("T")
        t.store("x", 1)
        t.store("x", 2)
        t.load("r1", "x")
        other = builder.thread("U")
        other.store("x", 9)
        execution = initial(builder.build(), "tso")
        (load,) = [n for n in execution.eligible_loads() if n.tid == 0]
        # init(0) is NOT offered: the local stores are ⊑-ordered after it
        # and shadow it?  No — shadowing applies to *local* entries only;
        # init and the remote 9 remain, plus the newest local 2.
        assert 1 not in values(execution, load)
        assert 2 in values(execution, load)

    def test_unresolved_local_store_address_blocks_search(self):
        builder = ProgramBuilder("blocked")
        builder.init("p", "x")
        t = builder.thread("T")
        t.load("r1", "p")  # produces the address
        t.store("r1", 5)  # buffered store, address unknown until r1
        t.load("r2", "x")  # cannot search the buffer yet
        execution = initial(builder.build(), "tso")
        assert [node.index for node in execution.eligible_loads()] == [0]
