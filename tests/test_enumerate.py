"""Tests for the behavior-enumeration driver (§4.1)."""

import pytest

from repro.errors import EnumerationError
from repro.core.enumerate import (
    EnumerationLimits,
    ExhaustionReason,
    enumerate_behaviors,
)
from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model

from tests.conftest import build_loop


class TestBasicEnumeration:
    def test_sb_counts(self, sb_program):
        assert len(enumerate_behaviors(sb_program, get_model("sc"))) == 3
        assert len(enumerate_behaviors(sb_program, get_model("weak"))) == 4

    def test_single_threaded_program_deterministic(self):
        builder = ProgramBuilder("det")
        t = builder.thread("T")
        t.store("x", 1)
        t.load("r1", "x")
        t.store("y", "r1")
        for model in ("sc", "tso", "pso", "weak"):
            result = enumerate_behaviors(builder.build(), get_model(model))
            assert len(result) == 1, model
            assert result.executions[0].final_registers()[("T", "r1")] == 1

    def test_no_loads_single_behavior(self):
        builder = ProgramBuilder("stores-only")
        builder.thread("A").store("x", 1)
        builder.thread("B").store("x", 2)
        result = enumerate_behaviors(builder.build(), get_model("weak"))
        # No observations: one execution (the stores stay unordered).
        assert len(result) == 1

    def test_all_executions_completed(self, sb_program, weak):
        for execution in enumerate_behaviors(sb_program, weak).executions:
            assert execution.completed()

    def test_register_outcomes_shape(self, sb_program, weak):
        outcomes = enumerate_behaviors(sb_program, weak).register_outcomes()
        assert all(isinstance(outcome, frozenset) for outcome in outcomes)
        sample = next(iter(outcomes))
        (key, value) = next(iter(sample))
        assert key[0] in ("P0", "P1") and key[1] in ("r1", "r2")
        assert value in (0, 1)


class TestDeduplication:
    def test_duplicates_detected(self, sb_program, weak):
        stats = enumerate_behaviors(sb_program, weak).stats
        assert stats.duplicates > 0

    def test_resolution_order_does_not_change_results(self):
        """Two loads resolvable in either order yield one behavior set."""
        builder = ProgramBuilder("order")
        builder.thread("W").store("x", 1)
        reader = builder.thread("R")
        reader.load("r1", "x")
        reader.load("r2", "x")
        result = enumerate_behaviors(builder.build(), get_model("weak"))
        outcomes = result.register_outcomes()
        values = {
            (dict(o)[("R", "r1")], dict(o)[("R", "r2")]) for o in outcomes
        }
        # all four combinations: WEAK reorders same-address loads
        assert values == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestLimits:
    def test_execution_limit_enforced_strict(self, sb_program, weak):
        with pytest.raises(EnumerationError):
            enumerate_behaviors(
                sb_program, weak, EnumerationLimits(max_executions=1), strict=True
            )

    def test_behavior_limit_enforced_strict(self, sb_program, weak):
        with pytest.raises(EnumerationError):
            enumerate_behaviors(
                sb_program, weak, EnumerationLimits(max_behaviors=2), strict=True
            )

    def test_execution_limit_degrades_by_default(self, sb_program, weak):
        result = enumerate_behaviors(
            sb_program, weak, EnumerationLimits(max_executions=1)
        )
        assert not result.complete
        assert result.reason is ExhaustionReason.EXECUTION_BUDGET
        assert len(result) == 1  # the budget is an exact upper bound

    def test_behavior_limit_is_exact_upper_bound(self, sb_program, weak):
        """Regression for the historical off-by-one: the old code only
        raised after exploring N+1 behaviors and kept N+1 executions."""
        for budget in (1, 2, 5):
            result = enumerate_behaviors(
                sb_program, weak, EnumerationLimits(max_behaviors=budget)
            )
            assert result.stats.explored == budget
            assert result.reason is ExhaustionReason.BEHAVIOR_BUDGET

    def test_budget_equal_to_need_is_complete(self, sb_program, weak):
        """A budget exactly matching the search's need does not trigger."""
        full = enumerate_behaviors(sb_program, weak)
        result = enumerate_behaviors(
            sb_program,
            weak,
            EnumerationLimits(
                max_behaviors=full.stats.explored, max_executions=len(full)
            ),
        )
        assert result.complete and result.reason is None
        assert len(result) == len(full)

    def test_node_limit_drops_runaway_branches(self):
        """A spin loop bounded only by the node limit terminates with
        truncated branches counted, not an exception from a child."""
        builder = ProgramBuilder("spin")
        w = builder.thread("W")
        w.store("flag", 1)
        s = builder.thread("S")
        s.label("top")
        s.load("r1", "flag")
        s.beqz("r1", "top")
        result = enumerate_behaviors(
            builder.build(),
            get_model("sc"),
            EnumerationLimits(max_nodes_per_thread=12),
        )
        assert result.stats.truncated > 0
        assert all(
            e.final_registers()[("S", "r1")] == 1 for e in result.executions
        )


class TestLoopPrograms:
    def test_bounded_loop_outcomes(self):
        result = enumerate_behaviors(build_loop(), get_model("sc"))
        outcomes = {
            (dict(o)[("P1", "r1")], dict(o)[("P1", "r2")])
            for o in result.register_outcomes()
        }
        # Under SC, once the spin observes 1 the final check reads 1 too;
        # if the countdown expires both may be 0, or the final check may
        # catch the flag late.
        assert (1, 1) in outcomes
        assert (0, 0) in outcomes
        assert (1, 0) not in outcomes

    def test_loop_weak_allows_stale_recheck(self):
        result = enumerate_behaviors(build_loop(), get_model("weak"))
        outcomes = {
            (dict(o)[("P1", "r1")], dict(o)[("P1", "r2")])
            for o in result.register_outcomes()
        }
        assert (1, 0) in outcomes  # same-address load-load reordering
