"""Tests for the analysis layer: model comparison and well-sync."""

from repro.analysis.compare import (
    check_inclusion_chain,
    outcome_count_table,
    outcome_sets,
)
from repro.analysis.wellsync import check_well_synchronized
from repro.experiments.wellsync_exp import build_guarded_mp
from repro.litmus.library import get_test



class TestCompare:
    def test_outcome_sets(self, sb_program):
        sets = outcome_sets(sb_program, ("sc", "weak"))
        assert sets.count("sc") == 3
        assert sets.count("weak") == 4
        assert sets.included("sc", "weak")
        assert not sets.included("weak", "sc")
        assert len(sets.only_in("weak", "sc")) == 1

    def test_inclusion_chain_on_sb_mp(self, sb_program, mp_program):
        report = check_inclusion_chain(
            [sb_program, mp_program], ("sc", "tso", "pso", "weak")
        )
        assert report.holds

    def test_chain_violation_detected(self, sb_program):
        """Reversing the chain must report violations."""
        report = check_inclusion_chain([sb_program], ("weak", "sc"))
        assert not report.holds
        assert "weak" in report.violations[0]

    def test_count_table_rendering(self, sb_program):
        table = outcome_count_table([sb_program], ("sc", "weak"))
        assert "SB" in table and "3" in table and "4" in table


class TestWellSync:
    def test_mp_is_racy(self, mp_program):
        report = check_well_synchronized(mp_program, "weak", {"flag"})
        assert not report.well_synchronized
        assert any(race.location == "x" for race in report.races)

    def test_guarded_mp_well_synchronized(self):
        report = check_well_synchronized(build_guarded_mp(True), "weak", {"flag"})
        assert report.well_synchronized
        assert report.resolutions_checked > 0

    def test_guard_without_fence_racy_under_weak(self):
        report = check_well_synchronized(build_guarded_mp(False), "weak", {"flag"})
        assert not report.well_synchronized

    def test_guarded_mp_well_synchronized_under_sc(self):
        """Under SC the branch + program order suffice (no fence needed)."""
        report = check_well_synchronized(build_guarded_mp(False), "sc", {"flag"})
        assert report.well_synchronized

    def test_sync_location_races_allowed(self, mp_program):
        report = check_well_synchronized(mp_program, "weak", {"flag", "x"})
        assert report.well_synchronized  # everything declared sync

    def test_cas_lock_protects_counter(self):
        report = check_well_synchronized(get_test("CAS-lock").program, "weak", {"l"})
        assert report.well_synchronized

    def test_summary_text(self, mp_program):
        report = check_well_synchronized(mp_program, "weak", {"flag"})
        assert "RACY" in report.summary()
