"""Tests for the MSI coherence substrate and its conformance (§4.2)."""

import pytest

from repro.errors import CoherenceError
from repro.coherence.checker import verify_run
from repro.coherence.machine import run_coherent
from repro.coherence.protocol import CoherenceController, LineState
from repro.core.atomicity import check_store_atomicity
from repro.core.serialization import find_serialization
from repro.isa.dsl import ProgramBuilder
from repro.operational.sc import run_sc

from tests.conftest import build_branchy


def controller(locations=("x",), caches=2):
    init_nodes = {loc: i for i, loc in enumerate(locations)}
    return CoherenceController(caches, {loc: 0 for loc in locations}, init_nodes)


class TestProtocol:
    def test_initial_state_invalid_everywhere(self):
        ctl = controller()
        assert ctl.state(0, "x") is LineState.INVALID
        assert ctl.state(1, "x") is LineState.INVALID

    def test_read_obtains_shared_copy(self):
        ctl = controller()
        value, source, edges = ctl.read(0, "x", nid=10)
        assert value == 0 and source == 0
        assert ctl.state(0, "x") is LineState.SHARED
        assert any(edge.reason == "copy-from-owner" for edge in edges)

    def test_write_invalidates_sharers(self):
        ctl = controller()
        ctl.read(1, "x", nid=10)
        edges = ctl.write(0, "x", 5, nid=11)
        assert ctl.state(0, "x") is LineState.MODIFIED
        assert ctl.state(1, "x") is LineState.INVALID
        reasons = {edge.reason for edge in edges}
        assert "ownership-transfer" in reasons and "invalidation" in reasons

    def test_ownership_transfer_chains_stores(self):
        ctl = controller()
        ctl.write(0, "x", 1, nid=10)
        edges = ctl.write(1, "x", 2, nid=11)
        transfer = [e for e in edges if e.reason == "ownership-transfer"]
        assert transfer[0].before == 10

    def test_read_after_write_downgrades_owner(self):
        ctl = controller()
        ctl.write(0, "x", 1, nid=10)
        value, source, _ = ctl.read(1, "x", nid=11)
        assert value == 1 and source == 10
        assert ctl.state(0, "x") is LineState.SHARED
        assert ctl.state(1, "x") is LineState.SHARED

    def test_cached_read_costs_no_transaction(self):
        ctl = controller()
        ctl.read(0, "x", nid=10)
        before = ctl.transactions
        ctl.read(0, "x", nid=11)
        assert ctl.transactions == before

    def test_unknown_location_rejected(self):
        ctl = controller()
        with pytest.raises(CoherenceError):
            ctl.read(0, "zzz", nid=1)


class TestMachine:
    def test_deterministic_per_seed(self, sb_program):
        first = run_coherent(sb_program, seed=7)
        second = run_coherent(sb_program, seed=7)
        assert first.registers == second.registers
        assert first.schedule == second.schedule

    def test_runs_produce_sc_outcomes(self, sb_program):
        sc_outcomes = run_sc(sb_program).outcomes
        for seed in range(20):
            assert run_coherent(sb_program, seed=seed).registers in sc_outcomes

    def test_graph_is_store_atomic(self, mp_program):
        for seed in range(10):
            run = run_coherent(mp_program, seed=seed)
            assert check_store_atomicity(run.graph) == []

    def test_runs_serializable(self, mp_program):
        for seed in range(10):
            run = run_coherent(mp_program, seed=seed)
            assert find_serialization(run) is not None

    def test_branchy_program(self):
        sc_outcomes = run_sc(build_branchy()).outcomes
        for seed in range(10):
            assert run_coherent(build_branchy(), seed=seed).registers in sc_outcomes

    def test_rmw_program(self):
        builder = ProgramBuilder("lock")
        builder.thread("A").cas("r1", "l", 0, 1)
        builder.thread("B").cas("r2", "l", 0, 1)
        winners = set()
        for seed in range(10):
            run = run_coherent(builder.build(), seed=seed)
            registers = run.final_register_dict()
            winners.add((registers[("A", "r1")], registers[("B", "r2")]))
            assert verify_run(run).conforms
        assert winners <= {(0, 1), (1, 0)}
        assert len(winners) >= 1


class TestChecker:
    def test_conform_report(self, sb_program):
        report = verify_run(run_coherent(sb_program, seed=1))
        assert report.conforms
        assert "ok" in report.summary()

    def test_precomputed_sc_outcomes(self, sb_program):
        sc_outcomes = run_sc(sb_program).outcomes
        report = verify_run(run_coherent(sb_program, seed=2), sc_outcomes=sc_outcomes)
        assert report.sc_outcome is True

    def test_skip_sc_check(self, sb_program):
        report = verify_run(run_coherent(sb_program, seed=3), check_sc=False)
        assert report.sc_outcome is None
        assert report.conforms
