"""Differential stress tests across every machine in the repository.

For one program, the repository now has up to six independent
implementations of "what can happen":

1. the axiomatic enumerator (per model),
2. the SC interleaving machine,
3. the TSO/PSO store-buffer machines,
4. the ≺-linearization dataflow machine (per store-atomic model),
5. the MSI/MESI coherent multiprocessor (single schedules, SC),
6. the out-of-order core (single schedules, TSO).

These tests pit them against each other on the generated cycle programs
— inputs none of the implementations were written against.
"""

from hypothesis import given, settings

from repro.core.enumerate import enumerate_behaviors
from repro.coherence import run_coherent, verify_run
from repro.litmus.generator import generate
from repro.models.registry import get_model
from repro.ooo import run_ooo
from repro.operational.dataflow import run_dataflow
from repro.operational.sc import run_sc
from repro.operational.storebuffer import run_tso

from tests.test_generator import random_cycles, _generate_or_skip


@given(random_cycles())
@settings(max_examples=12, deadline=None)
def test_six_way_agreement_on_generated_programs(cycle):
    program = _generate_or_skip(cycle).test.program

    sc_axiomatic = enumerate_behaviors(program, get_model("sc")).register_outcomes()
    tso_axiomatic = enumerate_behaviors(program, get_model("tso")).register_outcomes()
    weak_axiomatic = enumerate_behaviors(program, get_model("weak")).register_outcomes()

    # operational equivalences
    assert run_sc(program).outcomes == sc_axiomatic
    assert run_tso(program).outcomes == tso_axiomatic
    assert run_dataflow(program, "weak").outcomes == weak_axiomatic

    # inclusion chain across paradigms
    assert sc_axiomatic <= tso_axiomatic <= weak_axiomatic

    # single-schedule machines stay inside their models
    for seed in range(6):
        assert run_coherent(program, seed=seed).registers in sc_axiomatic
        assert run_ooo(program, seed=seed).registers in tso_axiomatic


@given(random_cycles())
@settings(max_examples=8, deadline=None)
def test_coherent_runs_conform_on_generated_programs(cycle):
    program = _generate_or_skip(cycle).test.program
    sc_outcomes = run_sc(program).outcomes
    for seed in range(4):
        report = verify_run(run_coherent(program, seed=seed), sc_outcomes=sc_outcomes)
        assert report.conforms


def test_agreement_on_a_fixed_large_cycle():
    """A six-edge cycle exercising three threads and three locations."""
    from repro.litmus.generator import EdgeKindSpec as E

    generated = generate(
        [E.POD_WW, E.RFE, E.POD_RW, E.WSE, E.POD_WW, E.WSE], "differential-z6"
    )
    program = generated.test.program
    weak_axiomatic = enumerate_behaviors(program, get_model("weak")).register_outcomes()
    assert run_dataflow(program, "weak").outcomes == weak_axiomatic
    tso_axiomatic = enumerate_behaviors(program, get_model("tso")).register_outcomes()
    assert run_tso(program).outcomes == tso_axiomatic
    for seed in range(10):
        assert run_ooo(program, seed=seed).registers in tso_axiomatic
