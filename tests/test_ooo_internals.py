"""White-box tests for the out-of-order core's microarchitecture."""


from repro.litmus.library import get_test
from repro.ooo import OooMachine, Stage
from repro.isa.dsl import ProgramBuilder


def machine_for(program, seed=0, replay=True):
    return OooMachine(program, seed=seed, replay_enabled=replay)


class TestWindowMechanics:
    def test_fetch_records_static_pc(self):
        machine = machine_for(get_test("SB").program)
        core = machine.cores[0]
        core.fetch()
        core.fetch()
        assert [entry.fetch_pc for entry in core.window] == [0, 1]

    def test_issue_requires_operands(self):
        builder = ProgramBuilder("dep")
        thread = builder.thread("T")
        thread.load("r1", "x")
        thread.store("y", "r1")
        machine = machine_for(builder.build())
        core = machine.cores[0]
        core.fetch()
        core.fetch()
        # the dependent store is not issuable before the load
        assert [entry.index for entry in core.issuable()] == [0]
        core.issue(core.window[0])
        assert [entry.index for entry in core.issuable()] == [1]

    def test_fetch_blocks_at_branch(self):
        machine = machine_for(get_test("dekker-nofence").program)
        core = machine.cores[0]
        while core.can_fetch():
            core.fetch()
        # S fa; L fb; bnez — fetch must stop at the unresolved branch
        assert len(core.window) == 3
        assert core.fetch_blocked_on is core.window[2]

    def test_store_forwarding_prefers_newest_window_store(self):
        builder = ProgramBuilder("fwd")
        thread = builder.thread("T")
        thread.store("x", 1)
        thread.store("x", 2)
        thread.load("r1", "x")
        machine = machine_for(builder.build())
        core = machine.cores[0]
        for _ in range(3):
            core.fetch()
        core.issue(core.window[0])
        core.issue(core.window[1])
        core.issue(core.window[2])
        assert core.window[2].value == 2

    def test_retired_store_does_not_forward(self):
        """Once a store drains, a later load must read memory (which may
        hold a newer remote value)."""
        builder = ProgramBuilder("drain")
        p0 = builder.thread("T")
        p0.store("x", 1)
        p0.load("r1", "x")
        builder.thread("U").store("x", 9)
        machine = machine_for(builder.build())
        core0, core1 = machine.cores
        core0.fetch()
        core0.fetch()
        core0.issue(core0.window[0])  # S x,1 computes
        core0.retire()  # store -> buffer
        core0.drain()  # buffer -> memory (x=1)
        # remote store lands
        core1.fetch()
        core1.issue(core1.window[0])
        core1.retire()
        core1.drain()  # x=9
        core0.issue(core0.window[1])  # load issues now
        assert core0.window[1].value == 9

    def test_squash_rebuilds_register_map(self):
        builder = ProgramBuilder("squash")
        thread = builder.thread("T")
        thread.load("r1", "x")
        thread.add("r2", "r1", 1)
        machine = machine_for(builder.build())
        core = machine.cores[0]
        core.fetch()
        core.fetch()
        load_entry = core.window[0]
        core.issue(load_entry)
        core.issue(core.window[1])
        core._squash_after(load_entry)
        assert len(core.window) == 1
        assert core.pc == 1
        assert core.regs == {"r1": load_entry}


class TestReplayAccounting:
    def test_replay_counter_and_stage(self):
        program = get_test("CoRR").program
        replays = 0
        for seed in range(80):
            run = machine_for(program, seed=seed).run()
            replays += run.replays
        assert replays > 0

    def test_no_replay_flag_respected(self):
        program = get_test("CoRR").program
        for seed in range(40):
            run = machine_for(program, seed=seed, replay=False).run()
            assert run.replays == 0
            assert not run.replay_enabled

    def test_stages_terminal(self):
        machine = machine_for(get_test("SB").program, seed=3)
        machine.run()
        for core in machine.cores:
            assert all(entry.stage is Stage.RETIRED for entry in core.window)
