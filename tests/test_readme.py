"""Documentation consistency: the README's Python blocks actually run.

Extracts every fenced ``python`` block from README.md and executes it in
one shared namespace, so code rot in the front-page examples fails CI.
"""

import re
from pathlib import Path


README = Path(__file__).resolve().parent.parent / "README.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks() -> list[str]:
    return _BLOCK_RE.findall(README.read_text(encoding="utf-8"))


def test_readme_has_python_blocks():
    assert len(_python_blocks()) >= 2


def test_readme_blocks_execute():
    namespace: dict = {}
    for block in _python_blocks():
        exec(compile(block, str(README), "exec"), namespace)  # noqa: S102


def test_readme_quickstart_output_is_accurate():
    """The quickstart comment promises sc 3 / tso 4 / weak 4."""
    from repro import ProgramBuilder, enumerate_behaviors, get_model

    builder = ProgramBuilder("SB")
    p0 = builder.thread("P0")
    p0.store("x", 1)
    p0.load("r1", "y")
    p1 = builder.thread("P1")
    p1.store("y", 1)
    p1.load("r2", "x")
    program = builder.build()
    counts = {
        name: len(enumerate_behaviors(program, get_model(name)))
        for name in ("sc", "tso", "weak")
    }
    assert counts == {"sc": 3, "tso": 4, "weak": 4}


def test_docs_exist_and_mention_key_apis():
    docs = README.parent / "docs"
    formalism = (docs / "formalism.md").read_text(encoding="utf-8")
    assert "Store Atomicity" in formalism
    api = (docs / "api.md").read_text(encoding="utf-8")
    for name in (
        "enumerate_behaviors",
        "run_litmus",
        "check_trace",
        "synthesize_fences",
        "run_dataflow",
        "run_ooo",
    ):
        assert name in api, name
    tutorial = (docs / "tutorial.md").read_text(encoding="utf-8")
    assert "MP" in tutorial


def test_testing_md_oracle_table_matches_registry():
    # the oracle table in docs/testing.md is generated from the ORACLES
    # registry — a stale table fails here, not in a reader's hands
    from repro.testing.oracles import oracle_table

    testing = (README.parent / "docs" / "testing.md").read_text(encoding="utf-8")
    assert oracle_table() in testing


def test_experiments_md_is_current_and_passing():
    experiments = (README.parent / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert "ALL EXPERIMENTS PASS" in experiments
    # every registered experiment module appears
    from repro.experiments.report import ALL_EXPERIMENTS

    for module in ALL_EXPERIMENTS:
        result_id = module.run.__module__.rsplit(".", 1)[-1]
        assert result_id, result_id  # modules importable
