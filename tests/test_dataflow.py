"""Tests for the ≺-linearization (dataflow) machine."""

import pytest
from hypothesis import given, settings

from repro.errors import ReproError
from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.operational.dataflow import run_dataflow
from repro.operational.sc import run_sc

from tests.conftest import build_branchy
from tests.test_properties import small_programs
from tests.test_properties_extended import annotated_programs, pointer_programs


class TestGuards:
    def test_bypass_models_rejected(self, sb_program):
        with pytest.raises(ReproError):
            run_dataflow(sb_program, "tso")

    def test_branchy_programs_rejected(self):
        with pytest.raises(ReproError):
            run_dataflow(build_branchy(), "weak")


class TestEquivalenceOnClassics:
    @pytest.mark.parametrize("test_name", ["SB", "MP", "LB", "CoRR", "IRIW", "SB+fences", "INC+INC", "SB+rmw", "MP+ra"])
    @pytest.mark.parametrize("model_name", ["sc", "weak", "weak-corr"])
    def test_matches_axiomatic(self, test_name, model_name):
        program = get_test(test_name).program
        axiomatic = enumerate_behaviors(program, get_model(model_name)).register_outcomes()
        assert run_dataflow(program, model_name).outcomes == axiomatic

    def test_sc_table_reduces_to_interleaving(self, sb_program):
        assert run_dataflow(sb_program, "sc").outcomes == run_sc(sb_program).outcomes

    def test_lb_reachable_operationally(self):
        """The machine realizes LB's (1,1): both stores execute before
        either load, because the weak table does not order load→store."""
        program = get_test("LB").program
        both_one = frozenset({(("P0", "r1"), 1), (("P1", "r2"), 1)})
        assert both_one in run_dataflow(program, "weak").outcomes
        assert both_one not in run_dataflow(program, "sc").outcomes


class TestPropertyEquivalence:
    @given(small_programs())
    @settings(max_examples=30, deadline=None)
    def test_random_programs_weak(self, program):
        axiomatic = enumerate_behaviors(program, get_model("weak")).register_outcomes()
        assert run_dataflow(program, "weak").outcomes == axiomatic

    @given(annotated_programs())
    @settings(max_examples=25, deadline=None)
    def test_random_annotated_programs(self, program):
        axiomatic = enumerate_behaviors(program, get_model("weak")).register_outcomes()
        assert run_dataflow(program, "weak").outcomes == axiomatic

    @given(pointer_programs())
    @settings(max_examples=20, deadline=None)
    def test_random_pointer_programs(self, program):
        """Register-indirect addresses: the machine's wait-for-address rule
        must coincide with the §5.1 non-speculative dependencies."""
        axiomatic = enumerate_behaviors(program, get_model("weak")).register_outcomes()
        assert run_dataflow(program, "weak").outcomes == axiomatic
