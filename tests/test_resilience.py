"""Tests for the resilience layer: budgets, graceful degradation,
checkpoints/resume, cancellation, and stuck-behavior surfacing."""

import warnings

import pytest

from repro.errors import EnumerationError, StuckBehaviorWarning
from repro.core.enumerate import (
    CancellationToken,
    EnumerationCheckpoint,
    EnumerationLimits,
    ExhaustionReason,
    enumerate_behaviors,
    resume_enumeration,
)
from repro.core.execution import Execution
from repro.isa.dsl import ProgramBuilder
from repro.litmus.library import get_test
from repro.models.registry import get_model

from tests.conftest import build_sb


def build_heavy3():
    """A 3-thread program whose behavior set far exceeds small budgets."""
    builder = ProgramBuilder("heavy3")
    w = builder.thread("W")
    w.store("x", 1)
    w.store("y", 1)
    p = builder.thread("P")
    p.load("r1", "x")
    p.load("r2", "y")
    p.store("z", 1)
    q = builder.thread("Q")
    q.load("r3", "z")
    q.load("r4", "y")
    q.load("r5", "x")
    return builder.build()


class TestGracefulDegradation:
    def test_oversized_three_thread_program_degrades(self):
        """The ISSUE acceptance case: a 3-thread litmus under a
        50-behavior budget returns a labeled, non-empty partial result
        instead of raising or hanging."""
        result = enumerate_behaviors(
            build_heavy3(), get_model("weak"), EnumerationLimits(max_behaviors=50)
        )
        assert result.complete is False
        assert result.reason is ExhaustionReason.BEHAVIOR_BUDGET
        assert len(result.executions) > 0
        assert result.checkpoint is not None
        assert result.status == "partial (behavior-budget)"

    def test_strict_restores_raising(self):
        with pytest.raises(EnumerationError) as info:
            enumerate_behaviors(
                build_heavy3(),
                get_model("weak"),
                EnumerationLimits(max_behaviors=50),
                strict=True,
            )
        assert info.value.reason is ExhaustionReason.BEHAVIOR_BUDGET

    def test_partial_outcomes_are_a_subset(self):
        program = build_heavy3()
        weak = get_model("weak")
        full = enumerate_behaviors(program, weak).register_outcomes()
        partial = enumerate_behaviors(
            program, weak, EnumerationLimits(max_behaviors=50)
        ).register_outcomes()
        assert partial <= full

    def test_deadline_expiry_returns_partial(self):
        result = enumerate_behaviors(
            build_heavy3(),
            get_model("weak"),
            EnumerationLimits(deadline_seconds=0.0),
        )
        assert result.complete is False
        assert result.reason is ExhaustionReason.DEADLINE
        assert result.checkpoint is not None

    def test_memory_budget_returns_partial(self):
        result = enumerate_behaviors(
            build_heavy3(),
            get_model("weak"),
            EnumerationLimits(max_memory_mb=0.001),
        )
        assert result.complete is False
        assert result.reason is ExhaustionReason.MEMORY

    def test_cancellation_token(self):
        token = CancellationToken()
        token.cancel()
        result = enumerate_behaviors(build_sb(), get_model("weak"), token=token)
        assert result.complete is False
        assert result.reason is ExhaustionReason.CANCELLED

    def test_complete_result_has_no_checkpoint(self):
        result = enumerate_behaviors(build_sb(), get_model("weak"))
        assert result.complete and result.reason is None
        assert result.checkpoint is None
        assert result.status == "complete"


class TestCheckpointResume:
    def test_resume_matches_unbudgeted_run(self):
        """Exhaust a tiny budget, resume until done, and check the final
        outcome set is identical to an unbudgeted enumeration."""
        program = build_heavy3()
        weak = get_model("weak")
        full = enumerate_behaviors(program, weak)

        result = enumerate_behaviors(
            program, weak, EnumerationLimits(max_behaviors=25)
        )
        rounds = 0
        while not result.complete:
            rounds += 1
            assert rounds < 100, "resume failed to converge"
            bigger = EnumerationLimits(
                max_behaviors=result.checkpoint.stats.explored + 25
            )
            result = resume_enumeration(result.checkpoint, bigger)
        assert rounds > 1  # the budget actually forced multiple resumes
        assert result.register_outcomes() == full.register_outcomes()
        assert len(result) == len(full)
        assert result.stats.explored == full.stats.explored

    def test_checkpoint_round_trips_through_disk(self, tmp_path):
        program = build_heavy3()
        weak = get_model("weak")
        partial = enumerate_behaviors(
            program, weak, EnumerationLimits(max_behaviors=50)
        )
        path = tmp_path / "search.ckpt"
        partial.checkpoint.save(path)
        loaded = EnumerationCheckpoint.load(path)
        resumed = resume_enumeration(loaded, EnumerationLimits())
        full = enumerate_behaviors(program, weak)
        assert resumed.complete
        assert resumed.register_outcomes() == full.register_outcomes()

    def test_load_rejects_non_checkpoint(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(EnumerationError):
            EnumerationCheckpoint.load(path)

    def test_load_rejects_corrupt_pickle(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        path.write_bytes(b"\x80definitely not a pickle stream")
        with pytest.raises(EnumerationError):
            EnumerationCheckpoint.load(path)

    def test_load_rejects_truncated_pickle(self, tmp_path):
        """A checkpoint chopped mid-stream (what a non-atomic save could
        have left behind after a crash) is rejected cleanly."""
        partial = enumerate_behaviors(
            build_heavy3(), get_model("weak"), EnumerationLimits(max_behaviors=50)
        )
        path = tmp_path / "truncated.ckpt"
        partial.checkpoint.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(EnumerationError):
            EnumerationCheckpoint.load(path)

    def test_save_is_atomic(self, tmp_path, monkeypatch):
        """A save that dies mid-write must leave the previous checkpoint
        intact and no temporary debris behind."""
        partial = enumerate_behaviors(
            build_heavy3(), get_model("weak"), EnumerationLimits(max_behaviors=50)
        )
        path = tmp_path / "search.ckpt"
        partial.checkpoint.save(path)
        good = path.read_bytes()

        import pickle

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(pickle, "dump", explode)
        with pytest.raises(OSError):
            partial.checkpoint.save(path)
        monkeypatch.undo()

        assert path.read_bytes() == good  # previous checkpoint survives
        assert [p.name for p in tmp_path.iterdir()] == ["search.ckpt"]  # no debris
        assert EnumerationCheckpoint.load(path) is not None

    def test_resume_with_original_limits_stops_again(self):
        partial = enumerate_behaviors(
            build_heavy3(), get_model("weak"), EnumerationLimits(max_behaviors=50)
        )
        again = resume_enumeration(partial.checkpoint)
        assert not again.complete
        assert again.reason is ExhaustionReason.BEHAVIOR_BUDGET


class TestCheckpointVersioning:
    """The format-version stamp: save writes it, load rejects files from
    an unknown (or pre-versioning) format instead of resuming from state
    it may misinterpret."""

    def _partial_checkpoint(self):
        return enumerate_behaviors(
            build_heavy3(), get_model("weak"), EnumerationLimits(max_behaviors=50)
        ).checkpoint

    def test_save_stamps_current_version(self, tmp_path):
        from repro.core.enumerate import CHECKPOINT_FORMAT_VERSION

        path = tmp_path / "search.ckpt"
        self._partial_checkpoint().save(path)
        loaded = EnumerationCheckpoint.load(path)
        assert loaded.format_version == CHECKPOINT_FORMAT_VERSION

    def test_load_rejects_unknown_version(self, tmp_path):
        import pickle

        checkpoint = self._partial_checkpoint()
        checkpoint.format_version = 999
        path = tmp_path / "future.ckpt"
        path.write_bytes(pickle.dumps(checkpoint))
        with pytest.raises(EnumerationError) as info:
            EnumerationCheckpoint.load(path)
        assert "version 999" in str(info.value)
        assert "re-run the original enumeration" in str(info.value)

    def test_load_rejects_pre_versioning_checkpoint(self, tmp_path):
        """A file written before the stamp existed has no
        ``format_version`` in its pickled ``__dict__`` — the class-level
        default must NOT paper over that."""
        import pickle

        checkpoint = self._partial_checkpoint()
        state = dict(vars(checkpoint))
        del state["format_version"]
        vars(checkpoint).clear()
        vars(checkpoint).update(state)
        path = tmp_path / "legacy.ckpt"
        path.write_bytes(pickle.dumps(checkpoint))
        with pytest.raises(EnumerationError) as info:
            EnumerationCheckpoint.load(path)
        assert "no format version" in str(info.value)


class TestStatsAccounting:
    def test_counters_consistent_on_complete_runs(self):
        for name in ("SB", "MP", "WRC"):
            for model in ("sc", "tso", "weak"):
                stats = enumerate_behaviors(
                    get_test(name).program, get_model(model)
                ).stats
                assert stats.consistent(), (name, model, stats)

    def test_counters_consistent_on_partial_runs(self):
        for budget in (1, 10, 50, 100):
            stats = enumerate_behaviors(
                build_heavy3(),
                get_model("weak"),
                EnumerationLimits(max_behaviors=budget),
            ).stats
            assert stats.consistent(), (budget, stats)


class TestStuckSurfacing:
    def test_stuck_behavior_emits_warning(self, monkeypatch):
        """A behavior with no eligible load is an engine bug; force one
        by stubbing eligibility and check it is loudly surfaced."""
        monkeypatch.setattr(Execution, "eligible_loads", lambda self: [])
        with pytest.warns(StuckBehaviorWarning):
            result = enumerate_behaviors(build_sb(), get_model("weak"))
        assert result.stats.stuck > 0
        assert result.stats.consistent()

    def test_healthy_run_warns_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            enumerate_behaviors(build_sb(), get_model("weak"))
