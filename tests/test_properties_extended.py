"""Extended property suites: annotated and pointer programs.

These push the cross-validation beyond the plain load/store fragment:

* random programs with fences (all four fine-grained kinds) and
  acquire/release annotations still satisfy axiomatic ≡ operational,
* annotations and fences are *monotone*: they only remove behaviors,
* under SC they are no-ops,
* on random pointer programs, aliasing speculation only adds behaviors
  (and equals non-speculative enumeration when no store is
  register-indirect).
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumerate import enumerate_behaviors
from repro.isa.dsl import ProgramBuilder
from repro.isa.instructions import Fence, FenceKind, Load, Store
from repro.isa.program import Program, Thread
from repro.models.registry import get_model
from repro.operational.sc import run_sc
from repro.operational.storebuffer import run_pso, run_tso

_LOCATIONS = ("x", "y")
_FENCE_KINDS = tuple(FenceKind)


@st.composite
def annotated_programs(draw):
    """2-thread programs with fences of every kind and rel/acq flags."""
    program = ProgramBuilder("annotated")
    register = 0
    for tid in range(2):
        thread = program.thread(f"P{tid}")
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            kind = draw(st.sampled_from(("store", "store", "load", "load", "fence")))
            location = draw(st.sampled_from(_LOCATIONS))
            if kind == "store":
                thread.store(
                    location,
                    draw(st.integers(min_value=1, max_value=3)),
                    release=draw(st.booleans()),
                )
            elif kind == "load":
                register += 1
                thread.load(f"r{register}", location, acquire=draw(st.booleans()))
            else:
                thread.fence(draw(st.sampled_from(_FENCE_KINDS)))
    return program.build()


def _strip_annotations(program: Program) -> Program:
    """The same program with acquire/release flags removed and fences
    deleted entirely."""
    threads = []
    for thread in program.threads:
        code = []
        for instruction in thread.code:
            if isinstance(instruction, Fence):
                continue
            if isinstance(instruction, Load) and instruction.acquire:
                instruction = replace(instruction, acquire=False)
            elif isinstance(instruction, Store) and instruction.release:
                instruction = replace(instruction, release=False)
            code.append(instruction)
        threads.append(Thread(thread.name, tuple(code), {}))
    return Program(tuple(threads), dict(program.initial_memory), program.name)


@given(annotated_programs())
@settings(max_examples=40, deadline=None)
def test_annotated_sc_equals_interleaving(program):
    axiomatic = enumerate_behaviors(program, get_model("sc")).register_outcomes()
    assert axiomatic == run_sc(program).outcomes


@given(annotated_programs())
@settings(max_examples=40, deadline=None)
def test_annotated_tso_equals_store_buffer(program):
    axiomatic = enumerate_behaviors(program, get_model("tso")).register_outcomes()
    assert axiomatic == run_tso(program).outcomes


@given(annotated_programs())
@settings(max_examples=25, deadline=None)
def test_annotated_pso_equals_relaxed_buffer(program):
    axiomatic = enumerate_behaviors(program, get_model("pso")).register_outcomes()
    assert axiomatic == run_pso(program).outcomes


@given(annotated_programs())
@settings(max_examples=25, deadline=None)
def test_annotations_are_monotone(program):
    """Fences and rel/acq flags can only REMOVE behaviors."""
    stripped = _strip_annotations(program)
    weak = get_model("weak")
    annotated_outcomes = enumerate_behaviors(program, weak).register_outcomes()
    stripped_outcomes = enumerate_behaviors(stripped, weak).register_outcomes()
    assert annotated_outcomes <= stripped_outcomes


@given(annotated_programs())
@settings(max_examples=20, deadline=None)
def test_annotations_noop_under_sc(program):
    stripped = _strip_annotations(program)
    sc = get_model("sc")
    assert (
        enumerate_behaviors(program, sc).register_outcomes()
        == enumerate_behaviors(stripped, sc).register_outcomes()
    )


@st.composite
def pointer_programs(draw):
    """Programs where location p holds a pointer to x or y; one thread
    dereferences it for a store, exercising the §5 aliasing machinery."""
    program = ProgramBuilder("pointers")
    program.init("p", draw(st.sampled_from(_LOCATIONS)))

    writer = program.thread("W")
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        choice = draw(st.sampled_from(("data", "pointer")))
        if choice == "data":
            writer.store(
                draw(st.sampled_from(_LOCATIONS)),
                draw(st.integers(min_value=1, max_value=2)),
            )
        else:
            writer.store("p", draw(st.sampled_from(_LOCATIONS)))

    chaser = program.thread("C")
    chaser.load("r1", "p")
    chaser.store("r1", 7)  # store through the pointer: data-dependent alias
    if draw(st.booleans()):
        chaser.load("r2", draw(st.sampled_from(_LOCATIONS)))
    return program.build()


@given(pointer_programs())
@settings(max_examples=30, deadline=None)
def test_speculation_superset_on_pointer_programs(program):
    plain = enumerate_behaviors(program, get_model("weak")).register_outcomes()
    speculated = enumerate_behaviors(program, get_model("weak-spec")).register_outcomes()
    assert plain <= speculated


@given(pointer_programs())
@settings(max_examples=20, deadline=None)
def test_pointer_programs_store_atomic(program):
    from repro.core.atomicity import check_store_atomicity
    from repro.core.serialization import find_serialization

    result = enumerate_behaviors(program, get_model("weak-spec"))
    assert result.executions
    for execution in result.executions:
        assert check_store_atomicity(execution.graph) == []
        assert find_serialization(execution) is not None
