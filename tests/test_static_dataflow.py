"""Tests for the per-thread dataflow framework (CFG, constants, aliasing)
and its three consumers: the precise analyzer, the pruned enumerator, and
the speculation-safety verdict."""

from repro.analysis.static import (
    AliasVerdict,
    analyze_program,
    build_cfg,
    compute_static_facts,
    speculation_safety,
)
from repro.analysis.static.conflict import collect_accesses
from repro.cli import main
from repro.core.enumerate import enumerate_behaviors
from repro.experiments.fig89 import build_program as build_fig8
from repro.isa.dsl import ProgramBuilder
from repro.isa.lint import LintLevel, lint_program
from repro.litmus.library import get_test
from repro.models.registry import get_model


def build_diamond():
    """Both arms of a branch write the address register; the store after
    the join is must-execute with the two-element address set {a, b}."""
    builder = ProgramBuilder("diamond")
    p0 = builder.thread("P0")
    p0.load("r1", "flag")
    p0.beqz("r1", "else")
    p0.mov("r2", "a")
    p0.jmp("join")
    p0.label("else")
    p0.mov("r2", "b")
    p0.label("join")
    p0.store("r2", 1)
    p1 = builder.thread("P1")
    p1.store("flag", 1)
    p1.store("c", 2)
    return builder.build()


def build_folded():
    """The store address is a constant moved through a register."""
    builder = ProgramBuilder("folded")
    p0 = builder.thread("P0")
    p0.mov("r1", "x")
    p0.store("r1", 1)
    p1 = builder.thread("P1")
    p1.load("r2", "x")
    return builder.build()


def build_loop():
    builder = ProgramBuilder("loop")
    p0 = builder.thread("P0")
    p0.store("flag", 1)
    p1 = builder.thread("P1")
    p1.mov("r9", 2)
    p1.label("again")
    p1.load("r1", "flag")
    p1.bnez("r1", "done")
    p1.compute("r9", "sub", "r9", 1)
    p1.bnez("r9", "again")
    p1.label("done")
    p1.load("r2", "flag")
    return builder.build()


def build_dead_arm():
    """The branch condition is the constant 0, so the store is dead."""
    builder = ProgramBuilder("dead-arm")
    p0 = builder.thread("P0")
    p0.mov("r1", 0)
    p0.bnez("r1", "dead")
    p0.jmp("end")
    p0.label("dead")
    p0.store("x", 99)
    p0.label("end")
    p0.load("r2", "x")
    return builder.build()


class TestDiamond:
    def test_join_merges_both_arms(self):
        program = build_diamond()
        facts = compute_static_facts(program)
        assert facts.threads[0].analyzable
        store = facts.access(0, 5)
        assert store.addresses == frozenset({"a", "b"})
        assert store.must_execute and not store.exact

    def test_register_defined_on_every_path_is_initialized(self):
        facts = compute_static_facts(build_diamond())
        assert facts.threads[0].maybe_uninit == frozenset()

    def test_must_not_alias_pair_previously_merged(self):
        program = build_diamond()
        facts = compute_static_facts(program)
        # The syntactic analyzer merged the dynamic-address store with
        # every location; the value sets prove it can never touch "c".
        assert facts.pair_verdict(0, 5, 1, 1) == AliasVerdict.NEVER
        assert facts.pair_verdict(0, 5, 0, 5) == AliasVerdict.MAY
        assert analyze_program(program, "weak", precise=False).conservative

    def test_collect_accesses_carries_location_sets(self):
        program = build_diamond()
        facts = compute_static_facts(program)
        store = next(
            access
            for access in collect_accesses(program, facts)
            if access.thread == "P0" and access.index == 5
        )
        assert store.locations == frozenset({"a", "b"})
        assert store.location is None

    def test_cfg_shape(self):
        cfg = build_cfg(build_diamond().threads[0])
        assert len(cfg.blocks) >= 4  # entry, two arms, join


class TestConstantFolding:
    def test_folded_address_is_exact(self):
        program = build_folded()
        facts = compute_static_facts(program)
        store = facts.access(0, 1)
        assert store.addresses == frozenset({"x"})
        assert store.exact
        assert facts.pair_verdict(0, 1, 1, 0) == AliasVerdict.MUST

    def test_analyzer_resolves_it_exactly(self):
        program = build_folded()
        assert not analyze_program(program, "weak").conservative
        assert analyze_program(program, "weak", precise=False).conservative


class TestLoops:
    def test_looping_thread_degrades_gracefully(self):
        facts = compute_static_facts(build_loop())
        assert facts.threads[0].analyzable  # straight-line thread
        assert not facts.threads[1].analyzable
        assert facts.threads[1].maybe_uninit is None
        assert not facts.analyzable

    def test_degraded_facts_never_change_outcomes(self):
        program = build_loop()
        facts = compute_static_facts(program)
        model = get_model("weak")
        baseline = enumerate_behaviors(program, model)
        accelerated = enumerate_behaviors(program, model, facts=facts)
        assert baseline.register_outcomes() == accelerated.register_outcomes()

    def test_lint_falls_back_to_linear_scan(self):
        builder = ProgramBuilder("loop-uninit")
        p0 = builder.thread("P0")
        p0.label("top")
        p0.load("r1", "r8")  # r8 never written: address-before-write
        p0.bnez("r1", "top")
        program = builder.build()
        errors = [f for f in lint_program(program) if f.level is LintLevel.ERROR]
        assert any("memory address" in f.message for f in errors)


class TestDeadCode:
    def test_dead_store_excluded(self):
        program = build_dead_arm()
        facts = compute_static_facts(program)
        assert facts.is_dead(0, 3)
        kinds = [access.kind for access in collect_accesses(program, facts)]
        assert kinds == ["R"]  # only the live load survives

    def test_dead_uninit_address_not_flagged(self):
        builder = ProgramBuilder("dead-uninit")
        p0 = builder.thread("P0")
        p0.mov("r1", 1)
        p0.bnez("r1", "ok")  # always taken
        p0.load("r9", "r8")  # unreachable: r8 would be a 0-address read
        p0.label("ok")
        p0.store("x", 1)
        program = builder.build()
        assert not [f for f in lint_program(program) if f.level is LintLevel.ERROR]

    def test_uninit_on_one_arm_still_flagged(self):
        builder = ProgramBuilder("one-arm")
        p0 = builder.thread("P0")
        p0.load("r1", "flag")
        p0.bnez("r1", "skip")  # taken path reaches the use with r2 uninit
        p0.mov("r2", "x")
        p0.label("skip")
        p0.load("r3", "r2")
        p1 = builder.thread("P1")
        p1.store("flag", 1)
        program = builder.build()
        errors = [f for f in lint_program(program) if f.level is LintLevel.ERROR]
        assert any("memory address" in f.message for f in errors)


class TestPrunedEnumeration:
    def test_register_indirect_test_prunes_without_changing_outcomes(self):
        program = get_test("MP+addr").program
        facts = compute_static_facts(program)
        for model_name in ("tso", "weak", "weak-spec"):
            model = get_model(model_name)
            baseline = enumerate_behaviors(program, model)
            accelerated = enumerate_behaviors(program, model, facts=facts)
            assert baseline.register_outcomes() == accelerated.register_outcomes()
            assert accelerated.stats.candidates_pruned > 0
            assert baseline.stats.candidates_pruned == 0


class TestSpeculationSafety:
    def test_library_address_dependency_is_safe(self):
        report = speculation_safety(get_test("MP+addr").program, "weak")
        assert report.all_safe

    def test_fig8_final_load_is_unsafe(self):
        report = speculation_safety(build_fig8(), "weak")
        assert [(v.thread, v.index) for v in report.unsafe_loads()] == [("B", 4)]
        assert "L8" in report.summary() or "B[4]" in report.summary()


class TestCli:
    def test_dataflow_subcommand(self, capsys):
        assert main(["dataflow", "MP+addr"]) == 0
        out = capsys.readouterr().out
        assert "MP+addr" in out

    def test_analyze_syntactic_flag(self, capsys):
        # exit 1 = races predicted, the analyze subcommand's contract
        assert main(["analyze", "MP+addr", "--syntactic"]) == 1
        assert "[conservative" in capsys.readouterr().out
        assert main(["analyze", "MP+addr", "--precise"]) == 1
        assert "[conservative" not in capsys.readouterr().out
