"""Unit tests for the operational reference machines."""

import pytest

from repro.errors import EnumerationError
from repro.isa.dsl import ProgramBuilder
from repro.operational.sc import run_sc
from repro.operational.state import ArchThreadState
from repro.operational.storebuffer import run_pso, run_store_buffer, run_tso
from repro.isa.operands import Const, Reg

from tests.conftest import build_branchy, build_loop


def outcome_set(result):
    return {tuple(sorted((f"{t}:{r}", v) for (t, r), v in o)) for o in result.outcomes}


class TestArchThreadState:
    def test_unwritten_register_reads_zero(self):
        state = ArchThreadState()
        assert state.read(Reg("r1")) == 0

    def test_write_is_persistent_and_functional(self):
        state = ArchThreadState()
        written = state.write(Reg("r1"), 5)
        assert written.read(Reg("r1")) == 5
        assert state.read(Reg("r1")) == 0

    def test_operand_evaluation(self):
        state = ArchThreadState().write(Reg("r1"), 7)
        assert state.operand(Const(3)) == 3
        assert state.operand(Reg("r1")) == 7


class TestScMachine:
    def test_sb_forbids_both_zero(self, sb_program):
        outcomes = outcome_set(run_sc(sb_program))
        assert (("P0:r1", 0), ("P1:r2", 0)) not in outcomes
        assert len(outcomes) == 3

    def test_mp_forbids_stale_read(self, mp_program):
        outcomes = outcome_set(run_sc(mp_program))
        assert (("P1:r1", 1), ("P1:r2", 0)) not in outcomes

    def test_branchy_program(self):
        outcomes = outcome_set(run_sc(build_branchy()))
        assert outcomes == {(("P1:r1", 0), ("P1:r2", 0)), (("P1:r1", 1), ("P1:r2", 7))}

    def test_loop_terminates(self):
        result = run_sc(build_loop())
        assert result.terminal_states > 0

    def test_rmw_atomic(self):
        builder = ProgramBuilder("incinc")
        builder.thread("A").fetch_add("r1", "c", 1)
        builder.thread("B").fetch_add("r2", "c", 1)
        outcomes = outcome_set(run_sc(builder.build()))
        assert outcomes == {(("A:r1", 0), ("B:r2", 1)), (("A:r1", 1), ("B:r2", 0))}

    def test_state_limit(self, sb_program):
        with pytest.raises(EnumerationError):
            run_sc(sb_program, max_states=2)


class TestStoreBufferMachine:
    def test_sb_allows_both_zero_under_tso(self, sb_program):
        outcomes = outcome_set(run_tso(sb_program))
        assert (("P0:r1", 0), ("P1:r2", 0)) in outcomes

    def test_fence_restores_sc_on_sb(self):
        builder = ProgramBuilder("SB+f")
        p0 = builder.thread("P0")
        p0.store("x", 1)
        p0.fence()
        p0.load("r1", "y")
        p1 = builder.thread("P1")
        p1.store("y", 1)
        p1.fence()
        p1.load("r2", "x")
        outcomes = outcome_set(run_tso(builder.build()))
        assert (("P0:r1", 0), ("P1:r2", 0)) not in outcomes

    def test_store_forwarding_sees_newest(self):
        builder = ProgramBuilder("fwd")
        t = builder.thread("T")
        t.store("x", 1)
        t.store("x", 2)
        t.load("r1", "x")
        outcomes = outcome_set(run_tso(builder.build()))
        assert outcomes == {(("T:r1", 2),)}

    def test_mp_kept_by_tso_broken_by_pso(self, mp_program):
        stale = (("P1:r1", 1), ("P1:r2", 0))
        assert stale not in outcome_set(run_tso(mp_program))
        assert stale in outcome_set(run_pso(mp_program))

    def test_pso_fence_restores_mp(self):
        builder = ProgramBuilder("MP+wf")
        p0 = builder.thread("P0")
        p0.store("x", 1)
        p0.fence()
        p0.store("flag", 1)
        p1 = builder.thread("P1")
        p1.load("r1", "flag")
        p1.load("r2", "x")
        outcomes = outcome_set(run_pso(builder.build()))
        assert (("P1:r1", 1), ("P1:r2", 0)) not in outcomes

    def test_rmw_drains_buffer(self):
        """An atomic op acts on memory after the buffer empties, so SB
        with exchanges is sequential."""
        builder = ProgramBuilder("sb-rmw")
        p0 = builder.thread("P0")
        p0.xchg("r0", "x", 1)
        p0.load("r1", "y")
        p1 = builder.thread("P1")
        p1.xchg("r2", "y", 1)
        p1.load("r3", "x")
        outcomes = outcome_set(run_tso(builder.build()))
        assert not any(
            dict(o).get("P0:r1") == 0 and dict(o).get("P1:r3") == 0 for o in outcomes
        )

    def test_tso_subset_of_pso(self, sb_program, mp_program):
        for program in (sb_program, mp_program, build_branchy()):
            assert run_tso(program).outcomes <= run_pso(program).outcomes

    def test_generic_entry_point(self, sb_program):
        assert run_store_buffer(sb_program, fifo=True).outcomes == run_tso(sb_program).outcomes
