"""Tests for minimal fence synthesis."""


import pytest

from repro.analysis.fencesynth import (
    FenceSite,
    behavior_signature,
    candidate_sites,
    insert_fences,
    synthesize_fences,
)
from repro.core.enumerate import enumerate_behaviors
from repro.isa.instructions import Fence
from repro.litmus.library import get_test
from repro.litmus.runner import run_litmus
from repro.litmus.test import LitmusTest
from repro.models.registry import get_model


class TestSites:
    def test_sb_has_one_gap_per_thread(self):
        sites = candidate_sites(get_test("SB").program)
        assert sites == (FenceSite("P0", 1), FenceSite("P1", 1))

    def test_existing_fences_excluded(self):
        sites = candidate_sites(get_test("SB+fences").program)
        assert sites == ()

    def test_gaps_adjacent_to_existing_fences_skipped(self):
        """The documented ``candidate_sites`` skip: a gap whose neighbor
        is already a fence is never a candidate — inserting there could
        only duplicate the existing fence's ordering, so any solution
        using it has a same-size twin without it, and admitting both
        would break the all-minimal-solutions byte-identity between the
        static and enumerative searches."""
        partially_fenced = insert_fences(
            get_test("SB").program, (FenceSite("P0", 1),)
        )
        # P0 is now S x; F; L y — both of its gaps touch the fence.
        assert candidate_sites(partially_fenced) == (FenceSite("P1", 1),)

    def test_insert_preserves_labels(self):
        program = get_test("dekker-nofence").program
        fenced = insert_fences(program, (FenceSite("P0", 1),))
        thread = fenced.threads[0]
        assert isinstance(thread.code[1], Fence)
        # the out0 label must still point past the (shifted) fetch-add
        assert thread.labels["out0"] == program.threads[0].labels["out0"] + 1

    def test_insert_behavior_matches_handwritten_fences(self):
        plain = get_test("SB").program
        fenced = insert_fences(
            plain, (FenceSite("P0", 1), FenceSite("P1", 1))
        )
        handwritten = get_test("SB+fences").program
        weak = get_model("weak")
        assert (
            enumerate_behaviors(fenced, weak).register_outcomes()
            == enumerate_behaviors(handwritten, weak).register_outcomes()
        )


class TestSynthesis:
    def test_sb_weak_needs_both(self):
        synthesis = synthesize_fences(get_test("SB"), "weak")
        assert synthesis.fence_count == 2
        assert synthesis.solutions == [(FenceSite("P0", 1), FenceSite("P1", 1))]

    def test_mp_pso_needs_writer_only(self):
        synthesis = synthesize_fences(get_test("MP"), "pso")
        assert synthesis.solutions == [(FenceSite("P0", 1),)]

    def test_r_tso_single_fence(self):
        synthesis = synthesize_fences(get_test("R"), "tso")
        assert synthesis.solutions == [(FenceSite("P1", 1),)]

    def test_already_forbidden(self):
        synthesis = synthesize_fences(get_test("SB"), "sc")
        assert synthesis.already_forbidden
        assert synthesis.fence_count == 0

    def test_solutions_actually_work(self):
        """Verify every reported solution end-to-end via the runner."""
        test = get_test("MP")
        synthesis = synthesize_fences(test, "weak")
        for solution in synthesis.solutions:
            fenced_program = insert_fences(test.program, solution)
            fenced_test = LitmusTest(
                name="MP-fenced",
                program=fenced_program,
                condition=test.condition,
            )
            assert not run_litmus(fenced_test, "weak").holds

    def test_max_fences_budget(self):
        synthesis = synthesize_fences(get_test("SB"), "weak", max_fences=1)
        assert synthesis.fence_count is None
        assert synthesis.subsets_checked == 2
        # An undersized budget is an honest partial result, not a "no
        # solution exists" claim.
        assert not synthesis.complete
        assert "max_fences=1" in synthesis.reason
        assert "[partial" in synthesis.summary()


class TestRobustTarget:
    def test_sb_weak_program_input(self):
        synthesis = synthesize_fences(
            get_test("SB").program, "weak", target="robust"
        )
        assert synthesis.target == "robust"
        assert synthesis.solutions == [(FenceSite("P0", 1), FenceSite("P1", 1))]

    def test_mp_tso_already_robust(self):
        synthesis = synthesize_fences(
            get_test("MP").program, "tso", target="robust"
        )
        assert synthesis.already_forbidden
        assert synthesis.fence_count == 0

    def test_condition_target_rejects_bare_program(self):
        with pytest.raises(ValueError, match="LitmusTest"):
            synthesize_fences(get_test("SB").program, "weak")

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            synthesize_fences(get_test("SB"), "weak", target="forbid")

    def test_max_subsets_budget_is_honest(self):
        synthesis = synthesize_fences(
            get_test("SB").program, "weak", target="robust", max_subsets=1
        )
        assert not synthesis.complete
        assert "subset budget (1)" in synthesis.reason
        assert synthesis.subsets_checked == 1

    def test_store_only_cycle_needs_memory_signature(self):
        """2+2W's non-SC outcome lives entirely in final memory —
        register outcomes are blind to it, behavior_signature is not."""
        program = get_test("2+2W").program
        locations = program.locations()
        sc = enumerate_behaviors(program, get_model("sc"))
        weak = enumerate_behaviors(program, get_model("weak"))
        assert weak.register_outcomes() == sc.register_outcomes()
        sc_signature = behavior_signature(sc, locations)
        weak_signature = behavior_signature(weak, locations)
        assert not weak_signature <= sc_signature
