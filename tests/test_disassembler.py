"""Round-trip tests for the disassembler."""

import pytest

from repro.isa.assembler import assemble, assemble_program
from repro.isa.disassembler import disassemble, export_library
from repro.litmus.library import all_tests
from repro.litmus.conditions import parse_condition
from repro.litmus.families import mp_chain, sb_ring


_LIBRARY = all_tests()


@pytest.mark.parametrize("test", _LIBRARY, ids=[t.name for t in _LIBRARY])
def test_library_round_trip(test):
    """assemble(disassemble(p)) reproduces every library program exactly,
    and the condition survives the text round trip too."""
    text = disassemble(test.program, str(test.condition))
    assembled = assemble(text)
    assert assembled.program == test.program
    assert parse_condition(assembled.condition_text) == test.condition


def test_families_round_trip():
    for test in (sb_ring(3), mp_chain(2, fenced=True)):
        text = disassemble(test.program, str(test.condition))
        assembled = assemble(text)
        assert assembled.program == test.program


def test_disassemble_preserves_labels():
    from repro.litmus.library import get_test

    program = get_test("dekker").program
    text = disassemble(program)
    assert "out0:" in text and "out1:" in text
    assert assemble_program(text) == program


def test_export_library(tmp_path):
    written = export_library(tmp_path)
    assert len(written) == len(_LIBRARY)
    sample = next(path for path in written if path.name == "SB.litmus")
    assembled = assemble(sample.read_text())
    assert assembled.program.name == "SB"
    assert assembled.condition_text is not None
