"""Unit tests for programs and threads."""

import pytest

from repro.errors import ProgramError
from repro.isa.dsl import ProgramBuilder
from repro.isa.instructions import Branch, Load, Store
from repro.isa.operands import Const, Reg
from repro.isa.program import Program, Thread


class TestThread:
    def test_label_out_of_range_rejected(self):
        with pytest.raises(ProgramError):
            Thread("T", (Store(Const("x"), Const(1)),), {"bad": 5})

    def test_label_at_end_allowed(self):
        thread = Thread("T", (Store(Const("x"), Const(1)),), {"end": 1})
        assert thread.labels["end"] == 1

    def test_branch_to_unknown_label_rejected(self):
        with pytest.raises(ProgramError):
            Thread("T", (Branch("nowhere", Reg("r1")),), {})

    def test_target_of(self):
        branch = Branch("end", Reg("r1"))
        thread = Thread("T", (branch, Store(Const("x"), Const(1))), {"end": 2})
        assert thread.target_of(branch) == 2

    def test_registers_in_first_use_order(self):
        thread = Thread(
            "T",
            (
                Load(Reg("r2"), Const("x")),
                Store(Const("y"), Reg("r2")),
                Load(Reg("r1"), Const("y")),
            ),
        )
        assert thread.registers() == (Reg("r2"), Reg("r1"))

    def test_static_locations_include_pointer_constants(self):
        thread = Thread(
            "T",
            (
                Store(Const("x"), Const("w")),  # stores pointer to w
                Load(Reg("r1"), Const("x")),
            ),
        )
        assert thread.static_locations() == {"x", "w"}


class TestProgram:
    def test_requires_a_thread(self):
        with pytest.raises(ProgramError):
            Program(())

    def test_duplicate_thread_names_rejected(self):
        t = Thread("P", (Store(Const("x"), Const(1)),))
        with pytest.raises(ProgramError):
            Program((t, t))

    def test_thread_index(self, sb_program):
        assert sb_program.thread_index("P0") == 0
        assert sb_program.thread_index("P1") == 1
        with pytest.raises(ProgramError):
            sb_program.thread_index("nope")

    def test_locations_sorted_and_complete(self, sb_program):
        assert sb_program.locations() == ("x", "y")

    def test_locations_include_initial_memory_pointers(self):
        builder = ProgramBuilder("p")
        builder.thread("T").load("r1", "x")
        builder.init("x", "w")
        program = builder.build()
        assert program.locations() == ("w", "x")

    def test_initial_value_defaults_to_zero(self, sb_program):
        assert sb_program.initial_value("x") == 0

    def test_instruction_count(self, sb_program):
        assert sb_program.instruction_count() == 4

    def test_has_branches(self, sb_program):
        assert not sb_program.has_branches()
        builder = ProgramBuilder("b")
        t = builder.thread("T")
        t.load("r1", "x")
        t.bnez("r1", "end")
        t.label("end")
        assert builder.build().has_branches()

    def test_str_rendering_mentions_threads_and_labels(self):
        builder = ProgramBuilder("render")
        t = builder.thread("T")
        t.load("r1", "x")
        t.beqz("r1", "skip")
        t.store("y", 1)
        t.label("skip")
        text = str(builder.build())
        assert "thread T" in text
        assert "skip:" in text
        assert "beqz r1, skip" in text
