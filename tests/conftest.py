"""Shared fixtures and program builders for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.isa.dsl import ProgramBuilder
from repro.models.registry import get_model

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a dev extra
    settings = None

if settings is not None:
    # "dev" keeps hypothesis's default randomized exploration for local
    # runs; "ci" derandomizes so a property-test failure in the CI log
    # reproduces exactly with the printed blob.  Select with
    # HYPOTHESIS_PROFILE=ci (the CI workflow exports it).
    settings.register_profile("dev", settings.default)
    settings.register_profile("ci", derandomize=True, print_blob=True)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def build_sb():
    """The store-buffering litmus program."""
    builder = ProgramBuilder("SB")
    p0 = builder.thread("P0")
    p0.store("x", 1)
    p0.load("r1", "y")
    p1 = builder.thread("P1")
    p1.store("y", 1)
    p1.load("r2", "x")
    return builder.build()


def build_mp():
    """The message-passing litmus program."""
    builder = ProgramBuilder("MP")
    p0 = builder.thread("P0")
    p0.store("x", 1)
    p0.store("flag", 1)
    p1 = builder.thread("P1")
    p1.load("r1", "flag")
    p1.load("r2", "x")
    return builder.build()


def build_single_thread():
    """A single thread exercising ALU + memory dataflow."""
    builder = ProgramBuilder("single")
    t = builder.thread("T")
    t.store("x", 5)
    t.load("r1", "x")
    t.add("r2", "r1", 10)
    t.store("y", "r2")
    t.load("r3", "y")
    return builder.build()


def build_branchy():
    """A thread whose store happens only when the loaded flag is set."""
    builder = ProgramBuilder("branchy")
    p0 = builder.thread("P0")
    p0.store("flag", 1)
    p1 = builder.thread("P1")
    p1.load("r1", "flag")
    p1.beqz("r1", "skip")
    p1.store("x", 7)
    p1.label("skip")
    p1.load("r2", "x")
    return builder.build()


def build_loop(bound_register: int = 2):
    """A thread that spins loading a flag another thread eventually sets.

    The loop is bounded by a countdown so enumeration stays finite.
    """
    builder = ProgramBuilder("loop")
    p0 = builder.thread("P0")
    p0.store("flag", 1)
    p1 = builder.thread("P1")
    p1.mov("r9", bound_register)
    p1.label("again")
    p1.load("r1", "flag")
    p1.bnez("r1", "done")
    p1.compute("r9", "sub", "r9", 1)  # type: ignore[arg-type]
    p1.bnez("r9", "again")
    p1.label("done")
    p1.load("r2", "flag")
    return builder.build()


@pytest.fixture
def sb_program():
    return build_sb()


@pytest.fixture
def mp_program():
    return build_mp()


@pytest.fixture
def weak():
    return get_model("weak")


@pytest.fixture
def sc():
    return get_model("sc")


@pytest.fixture
def tso():
    return get_model("tso")
