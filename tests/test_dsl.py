"""Unit tests for the Python builder DSL."""

import pytest

from repro.errors import ProgramError
from repro.isa.dsl import ProgramBuilder
from repro.isa.instructions import Branch, Compute, Load, Rmw, RmwKind, Store
from repro.isa.operands import Const, Reg


class TestThreadBuilder:
    def test_chaining(self):
        builder = ProgramBuilder("p")
        thread = builder.thread("T").store("x", 1).load("r1", "x").fence()
        program = builder.build()
        assert thread is builder._threads[0]
        assert len(program.threads[0].code) == 3

    def test_register_string_convention(self):
        """Strings matching r<digits> are registers, others locations."""
        builder = ProgramBuilder("p")
        t = builder.thread("T")
        t.load("r1", "x")
        t.store("r1", 7)  # register-indirect store through r1
        t.store("ready", 1)  # 'ready' is a location, not a register
        code = builder.build().threads[0].code
        assert code[1] == Store(Reg("r1"), Const(7))
        assert code[2] == Store(Const("ready"), Const(1))

    def test_compute_helpers(self):
        builder = ProgramBuilder("p")
        t = builder.thread("T")
        t.mov("r1", 5)
        t.add("r2", "r1", 1)
        t.eq("r3", "r2", 6)
        code = builder.build().threads[0].code
        assert code[0] == Compute(Reg("r1"), "mov", (Const(5),))
        assert code[1] == Compute(Reg("r2"), "add", (Reg("r1"), Const(1)))
        assert code[2] == Compute(Reg("r3"), "eq", (Reg("r2"), Const(6)))

    def test_branches_and_labels(self):
        builder = ProgramBuilder("p")
        t = builder.thread("T")
        t.label("top")
        t.load("r1", "x")
        t.beqz("r1", "top")
        t.jmp("end")
        t.label("end")
        thread = builder.build().threads[0]
        assert thread.labels == {"top": 0, "end": 3}
        assert isinstance(thread.code[1], Branch)

    def test_duplicate_label_rejected(self):
        builder = ProgramBuilder("p")
        t = builder.thread("T")
        t.label("l")
        with pytest.raises(ProgramError):
            t.label("l")

    def test_rmw_builders(self):
        builder = ProgramBuilder("p")
        t = builder.thread("T")
        t.cas("r1", "l", 0, 1)
        t.xchg("r2", "x", 9)
        t.fetch_add("r3", "c", 1)
        code = builder.build().threads[0].code
        assert code[0] == Rmw(Reg("r1"), Const("l"), RmwKind.CAS, (Const(0), Const(1)))
        assert code[1] == Rmw(Reg("r2"), Const("x"), RmwKind.EXCHANGE, (Const(9),))
        assert code[2] == Rmw(Reg("r3"), Const("c"), RmwKind.FETCH_ADD, (Const(1),))


class TestProgramBuilder:
    def test_auto_thread_names(self):
        builder = ProgramBuilder("p")
        builder.thread().store("x", 1)
        builder.thread().store("y", 1)
        program = builder.build()
        assert [t.name for t in program.threads] == ["P0", "P1"]

    def test_init_values(self):
        builder = ProgramBuilder("p")
        builder.thread("T").load("r1", "x")
        builder.init("x", 42)
        program = builder.build()
        assert program.initial_value("x") == 42

    def test_load_instruction_shape(self):
        builder = ProgramBuilder("p")
        builder.thread("T").load(Reg("r1"), "x")
        code = builder.build().threads[0].code
        assert code[0] == Load(Reg("r1"), Const("x"))
