"""Unit tests for ISA operands."""

import pytest

from repro.errors import ProgramError
from repro.isa.operands import Const, Reg, as_operand


class TestReg:
    def test_name_round_trip(self):
        assert Reg("r1").name == "r1"
        assert str(Reg("r1")) == "r1"

    def test_equality_and_hash(self):
        assert Reg("r1") == Reg("r1")
        assert Reg("r1") != Reg("r2")
        assert len({Reg("r1"), Reg("r1"), Reg("r2")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ProgramError):
            Reg("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ProgramError):
            Reg(3)  # type: ignore[arg-type]


class TestConst:
    def test_int_payload(self):
        assert Const(7).value == 7
        assert str(Const(7)) == "7"

    def test_negative_int(self):
        assert Const(-3).value == -3

    def test_string_payload_is_location_name(self):
        assert Const("x").value == "x"
        assert str(Const("x")) == "'x'"

    def test_bool_rejected(self):
        with pytest.raises(ProgramError):
            Const(True)

    def test_float_rejected(self):
        with pytest.raises(ProgramError):
            Const(1.5)  # type: ignore[arg-type]

    def test_equality(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const("1")


class TestAsOperand:
    def test_passthrough(self):
        reg = Reg("r1")
        const = Const(4)
        assert as_operand(reg) is reg
        assert as_operand(const) is const

    def test_int_coerced_to_const(self):
        assert as_operand(9) == Const(9)

    def test_string_coerced_to_location_const(self):
        assert as_operand("x") == Const("x")

    def test_unsupported_type_rejected(self):
        with pytest.raises(ProgramError):
            as_operand(object())  # type: ignore[arg-type]
