"""Tests for imposed orderings (§3.3) and the dedup ablation."""

import pytest

from repro.errors import AtomicityViolation, CycleError
from repro.core.enumerate import enumerate_behaviors
from repro.core.serialization import all_serializations
from repro.models.registry import get_model



class TestImpose:
    def test_impose_narrows_serializations(self, sb_program, weak):
        """§3.3: extra edges rule out behaviors but never add them."""
        execution = enumerate_behaviors(sb_program, weak).executions[0]
        u, v = next(
            (a, b)
            for a, b in execution.graph.unordered_pairs()
            if execution.graph.node(a).is_memory and execution.graph.node(b).is_memory
        )
        baseline = {tuple(order) for order in all_serializations(execution)}
        constrained = execution.copy()
        constrained.impose(u, v)
        narrowed = {tuple(order) for order in all_serializations(constrained)}
        assert narrowed <= baseline
        assert all(order.index(u) < order.index(v) for order in narrowed)

    def test_impose_reruns_closure(self):
        """Figure 7 in miniature: imposing one ordering exposes another."""
        from repro.experiments.fig7 import S1, S2, build_program
        from repro.experiments.base import executions_where, node_at

        enumeration = enumerate_behaviors(build_program(), get_model("weak"))
        execution = executions_where(enumeration, r5=2, r6=3)[0]
        s1 = node_at(execution, *S1)
        s2 = node_at(execution, *S2)
        if execution.graph.ordered(s1.nid, s2.nid):
            pytest.skip("chosen execution already orders S1/S2")
        execution.impose(s1.nid, s2.nid)
        assert execution.graph.before(s1.nid, s2.nid)

    def test_inconsistent_imposition_rejected(self, sb_program, weak):
        execution = enumerate_behaviors(sb_program, weak).executions[0]
        ordered = next(
            (u, v)
            for u in range(len(execution.graph))
            for v in range(len(execution.graph))
            if u != v and execution.graph.before(u, v)
        )
        with pytest.raises((CycleError, AtomicityViolation)):
            execution.impose(ordered[1], ordered[0])


class TestDedupAblation:
    def test_same_behavior_set_without_dedup(self, sb_program, weak):
        with_dedup = enumerate_behaviors(sb_program, weak, dedup=True)
        without = enumerate_behaviors(sb_program, weak, dedup=False)
        assert with_dedup.register_outcomes() == without.register_outcomes()
        assert len(with_dedup) == len(without)

    def test_dedup_saves_exploration(self, weak):
        from repro.experiments.scaling import chain_program

        program = chain_program(3)
        with_dedup = enumerate_behaviors(program, weak, dedup=True)
        without = enumerate_behaviors(program, weak, dedup=False)
        assert without.stats.explored > with_dedup.stats.explored
        assert with_dedup.register_outcomes() == without.register_outcomes()
