"""Tests for the constraint-based behavior solver.

Three layers: the CDCL SAT core against brute force (pigeonhole,
unit-propagation chains, assumption cores, random 3-SAT, AllSAT
model counting), the end-to-end ``solve_behaviors`` ==
``enumerate_behaviors`` byte-identity (canonical litmus tests,
property-based over the fuzz generator's programs × four models), and
the unsat-core explainer's verdicts, minimal cores, and witnesses on
the canonical forbidden/reachable outcomes.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.solver import (
    SatSolver,
    encode_program,
    explain_forbidden,
    solve_behaviors,
    solve_behaviors_with_stats,
)
from repro.analysis.solver.sat import _luby
from repro.core.enumerate import EnumerationLimits, enumerate_behaviors
from repro.litmus.library import all_tests, get_test
from repro.litmus.runner import run_litmus
from repro.models import get_model
from repro.testing.fuzzgen import generate_program, profile_for_index

MODELS = ("sc", "tso", "pso", "weak")


def _keys(result) -> list[str]:
    return sorted(repr(e.loadstore_key()) for e in result.executions)


# ----------------------------------------------------------------------
# the CDCL core


def _pigeonhole(n_pigeons: int, n_holes: int) -> SatSolver:
    solver = SatSolver()
    var = {
        (p, h): solver.new_var()
        for p in range(n_pigeons)
        for h in range(n_holes)
    }
    for p in range(n_pigeons):
        solver.add_clause([var[(p, h)] for h in range(n_holes)])
    for h in range(n_holes):
        for p1, p2 in itertools.combinations(range(n_pigeons), 2):
            solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return solver


def test_luby_sequence():
    assert [_luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]


def test_pigeonhole_unsat():
    # n+1 pigeons in n holes forces clause learning + restarts.
    for n in (3, 4, 5, 6):
        assert _pigeonhole(n + 1, n).solve() is False
    assert _pigeonhole(4, 4).solve() is True


def test_unit_propagation_chain():
    solver = SatSolver()
    variables = [solver.new_var() for _ in range(50)]
    for a, b in zip(variables, variables[1:]):
        solver.add_clause([-a, b])
    solver.add_clause([variables[0]])
    assert solver.solve()
    assert all(solver.value(v) for v in variables)


def test_assumption_core_subset():
    solver = SatSolver()
    a, b, c, d = (solver.new_var() for _ in range(4))
    solver.add_clause([-a, -b])
    assert solver.solve([a, c, b]) is False
    assert set(solver.core()) <= {a, b}
    # incremental: the same solver stays usable after an UNSAT answer
    assert solver.solve([a, c]) is True
    assert solver.solve([d]) is True


def test_random_3sat_vs_brute_force():
    rng = random.Random(0)
    for trial in range(200):
        n_vars = rng.randint(3, 8)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n_vars) for _ in range(3)]
            for _ in range(rng.randint(1, 30))
        ]
        solver = SatSolver()
        for _ in range(n_vars):
            solver.new_var()
        consistent = all([solver.add_clause(clause) for clause in clauses])
        got = solver.solve() if consistent else False
        want = any(
            all(
                any((lit > 0) == bool((m >> (abs(lit) - 1)) & 1) for lit in clause)
                for clause in clauses
            )
            for m in range(1 << n_vars)
        )
        assert got == want, (trial, clauses)
        if got:
            model = [solver.value(v + 1) for v in range(n_vars)]
            assert all(
                any((lit > 0) == model[abs(lit) - 1] for lit in clause)
                for clause in clauses
            ), trial


def test_random_assumption_cores_vs_brute_force():
    rng = random.Random(1)
    for trial in range(150):
        n_vars = rng.randint(3, 7)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n_vars) for _ in range(2)]
            for _ in range(rng.randint(1, 20))
        ]
        solver = SatSolver()
        for _ in range(n_vars):
            solver.new_var()
        if not all([solver.add_clause(clause) for clause in clauses]):
            continue
        assumptions = [
            rng.choice([1, -1]) * v
            for v in range(1, n_vars + 1)
            if rng.random() < 0.6
        ]

        def brute(extra):
            units = clauses + [[lit] for lit in extra]
            return any(
                all(
                    any(
                        (lit > 0) == bool((m >> (abs(lit) - 1)) & 1)
                        for lit in clause
                    )
                    for clause in units
                )
                for m in range(1 << n_vars)
            )

        got = solver.solve(assumptions)
        assert got == brute(assumptions), (trial, clauses, assumptions)
        if not got:
            core = solver.core()
            assert set(core) <= set(assumptions), (core, assumptions)
            assert not brute(core), ("core not unsat", core, clauses)


def test_allsat_model_counts_vs_brute_force():
    # free variables: 2^4 models
    solver = SatSolver()
    xs = [solver.new_var() for _ in range(4)]
    count = 0
    while solver.solve():
        count += 1
        solver.add_clause([(-x if solver.value(x) else x) for x in xs])
    assert count == 16

    rng = random.Random(2)
    for trial in range(75):
        n_vars = rng.randint(3, 6)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n_vars) for _ in range(3)]
            for _ in range(rng.randint(1, 12))
        ]
        solver = SatSolver()
        for _ in range(n_vars):
            solver.new_var()
        if not all([solver.add_clause(clause) for clause in clauses]):
            continue
        models: set[tuple[bool, ...]] = set()
        while solver.solve():
            model = tuple(solver.value(v + 1) for v in range(n_vars))
            assert model not in models, "AllSAT repeated a model"
            models.add(model)
            solver.add_clause(
                [(-(v + 1) if model[v] else (v + 1)) for v in range(n_vars)]
            )
        want = {
            tuple(bool((m >> v) & 1) for v in range(n_vars))
            for m in range(1 << n_vars)
            if all(
                any((lit > 0) == bool((m >> (abs(lit) - 1)) & 1) for lit in clause)
                for clause in clauses
            )
        }
        assert models == want, (trial, len(models), len(want))


# ----------------------------------------------------------------------
# solve_behaviors == enumerate_behaviors


def test_canonical_litmus_agreement():
    for name in ("SB", "SB+fences", "MP", "IRIW", "2+2W", "CoRR"):
        program = get_test(name).program
        for model_name in MODELS:
            enumerated = enumerate_behaviors(program, get_model(model_name))
            solved = solve_behaviors(program, model_name)
            assert enumerated.complete and solved.complete
            assert _keys(enumerated) == _keys(solved), (name, model_name)


def test_branchy_litmus_agreement():
    # tests with unresolved branches take the restricted-search path
    branchy = [t for t in all_tests() if t.program.has_branches()]
    assert branchy, "library lost its branchy tests?"
    for test in branchy:
        for model_name in ("tso", "weak"):
            enumerated = enumerate_behaviors(test.program, get_model(model_name))
            solved = solve_behaviors(test.program, model_name)
            assert enumerated.complete and solved.complete
            assert _keys(enumerated) == _keys(solved), (test.name, model_name)


def test_solver_stats_consistent():
    _, stats = solve_behaviors_with_stats(get_test("SB").program, "tso")
    assert stats.proposals == stats.feasible + stats.infeasible
    assert stats.behaviors == 4
    result = solve_behaviors(get_test("SB").program, "tso")
    assert result.stats.consistent()


def test_solver_respects_behavior_budget():
    limits = EnumerationLimits(max_behaviors=2, max_executions=50_000)
    result = solve_behaviors(get_test("SB").program, "weak", limits)
    assert not result.complete
    assert len(result.executions) <= 2


def test_encoding_has_selector_groups():
    encoding = encode_program(
        get_test("SB").program, get_model("sc"), with_selectors=True
    )
    keys = {group.key for group in encoding.groups}
    assert "partial-order" in keys and "rf-choice" in keys
    for selector in encoding.selectors():
        assert encoding.group_of(selector).selector == selector


@given(
    st.integers(min_value=0, max_value=499),
    st.sampled_from(MODELS),
)
@settings(max_examples=30, deadline=None)
def test_solver_matches_enumerator_on_fuzz_programs(index, model_name):
    profile = profile_for_index("mixed", index)
    seed = (index * 1_000_003) & 0x7FFFFFFF
    program = generate_program(seed, profile)
    limits = EnumerationLimits(max_behaviors=20_000, max_executions=20_000)
    enumerated = enumerate_behaviors(
        program, get_model(model_name), limits
    )
    solved = solve_behaviors(program, model_name, limits)
    assume(enumerated.complete and solved.complete)
    assert _keys(enumerated) == _keys(solved), (program.name, model_name)


# ----------------------------------------------------------------------
# the explainer


def test_explain_forbidden_sb_under_sc():
    explanation = explain_forbidden(get_test("SB"), "sc")
    assert explanation.forbidden
    assert explanation.core, "a forbidden outcome must produce a core"
    assert explanation.cycle, "SB/sc determines a cycle witness"
    assert explanation.witness is None
    rendered = explanation.render()
    assert "FORBIDDEN" in rendered
    assert "cycle" in rendered


def test_explain_reachable_sb_under_tso():
    explanation = explain_forbidden(get_test("SB"), "tso")
    assert not explanation.forbidden
    assert explanation.witness is not None
    assert explanation.core == []
    rendered = explanation.render()
    assert "is reachable" in rendered and "witness execution" in rendered


def _fresh_outcome_encoding(test, model_name):
    """The same CNF ``explain_forbidden`` solves: axiom groups under
    selectors plus the outcome-restriction group."""
    from repro.analysis.solver.encode import ClauseGroup
    from repro.analysis.solver.explain import (
        GROUP_OUTCOME,
        _conjunctive_atoms,
        _restrict_outcome,
    )

    encoding = encode_program(
        test.program, get_model(model_name), with_selectors=True
    )
    selector = encoding.solver.new_var()
    group = ClauseGroup(GROUP_OUTCOME, "outcome restriction", selector)
    encoding.groups.append(group)
    atoms = _conjunctive_atoms(test.condition.expr)
    assert atoms is not None
    _restrict_outcome(encoding, atoms, group)
    return encoding


def test_explain_core_is_minimal():
    # Dropping any one axiom group from the minimal core must make the
    # CNF satisfiable again.  (Exact because ``blocked == 0``: the core
    # was derived without any replay-blocking clauses.)
    for name, model_name in (("SB", "sc"), ("MP+fences", "weak")):
        explanation = explain_forbidden(get_test(name), model_name)
        assert explanation.forbidden and explanation.core
        assert explanation.blocked == 0
        keys = [group.key for group in explanation.core]
        encoding = _fresh_outcome_encoding(get_test(name), model_name)
        selectors = {
            group.selector: group.key
            for group in encoding.groups
            if group.key in keys and group.selector is not None
        }
        assert sorted(selectors.values()) == sorted(keys)
        assert encoding.solver.solve(list(selectors)) is False
        for dropped, key in selectors.items():
            kept = [s for s in selectors if s != dropped]
            assert encoding.solver.solve(kept), (
                f"{name}/{model_name}: core not minimal, {key} is redundant"
            )


def test_explain_verdicts_match_runner():
    for test in all_tests():
        for model_name in MODELS:
            outcome = run_litmus(test, get_model(model_name))
            explanation = explain_forbidden(test, model_name)
            assert explanation.forbidden == (outcome.satisfied_pairs == 0), (
                test.name,
                model_name,
            )


def test_oracle_solver_vs_axiomatic_clean():
    from repro.testing.oracles import run_oracles

    for name in ("SB", "MP", "IRIW", "CoRR"):
        program = get_test(name).program
        discrepancies, _skipped = run_oracles(
            program, names=("solver-vs-axiomatic",)
        )
        assert discrepancies == [], discrepancies
