"""Tests for the SC-robustness analysis and the new CLI subcommands."""


from repro.analysis.compare import check_robustness
from repro.cli import main
from repro.litmus.library import get_test


class TestRobustness:
    def test_sb_not_robust_against_weak(self):
        report = check_robustness(get_test("SB").program, "weak")
        assert not report.robust
        assert len(report.extra_outcomes) == 1

    def test_fenced_sb_robust(self):
        report = check_robustness(get_test("SB+fences").program, "weak")
        assert report.robust
        assert report.extra_outcomes == frozenset()

    def test_mp_robust_against_tso_not_pso(self):
        program = get_test("MP").program
        assert check_robustness(program, "tso").robust
        assert not check_robustness(program, "pso").robust

    def test_ra_annotations_restore_mp_robustness(self):
        assert check_robustness(get_test("MP+ra").program, "weak").robust

    def test_sb_ra_still_not_robust(self):
        assert not check_robustness(get_test("SB+ra").program, "weak").robust

    def test_summary_text(self):
        report = check_robustness(get_test("SB").program, "weak")
        assert "NOT robust" in report.summary()
        assert "P0:r1=0" in report.summary()


class TestCliSubcommands:
    def test_robust_exit_codes(self, capsys):
        assert main(["robust", "SB", "-m", "weak"]) == 1
        assert main(["robust", "SB+fences", "-m", "weak"]) == 0
        out = capsys.readouterr().out
        assert "NOT robust" in out and "is robust" in out

    def test_fences_subcommand(self, capsys):
        assert main(["fences", "MP", "-m", "pso"]) == 0
        assert "P0@1" in capsys.readouterr().out

    def test_fences_budget_failure(self, capsys):
        assert main(["fences", "SB", "-m", "weak", "--max-fences", "1"]) == 1
        assert "NO fence placement" in capsys.readouterr().out

    def test_generate_subcommand(self, capsys):
        assert main(["generate", "Fre", "PodWR", "Fre", "PodWR", "-m", "tso"]) == 0
        out = capsys.readouterr().out
        assert "exists" in out and "observed Yes" in out

    def test_generate_unknown_edge(self, capsys):
        assert main(["generate", "Xyz", "PodWR"]) == 2
        assert "unknown edge" in capsys.readouterr().err
