"""Coverage-guided campaign tests (:mod:`repro.testing.coverage`) plus
the PR's cross-subsystem seams: persistent partial-search checkpoints
in the behavior cache, and replay-context memoization."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BehaviorCache
from repro.core.enumerate import EnumerationLimits, enumerate_behaviors
from repro.errors import ReproError
from repro.isa.assembler import assemble_program
from repro.isa.disassembler import disassemble
from repro.models.registry import get_model
from repro.testing.coverage import (
    CampaignConfig,
    CampaignState,
    CoverageGrid,
    coverage_report,
    load_campaign,
    model_tables_digest,
    mutation_candidates,
    open_campaign,
    plan_batch,
    program_digest,
    program_edge_kinds,
    run_guided_campaign,
    save_state,
)
from repro.testing.fuzz import replay_entry, replay_paths
from repro.testing.fuzzgen import MIXED_ORDER, generate_program, get_profile
from repro.testing.oracles import ORACLES, OracleContext, oracle_table

#: The cheap oracle pair campaign tests run with (single-model
#: axiomatic comparisons; no parallel engine, no solver).
FAST_ORACLES = ("axiomatic-vs-sc", "axiomatic-vs-tso")

CORPUS_DIR = Path(__file__).parent / "corpus"


def _fingerprint(campaign_dir: Path) -> tuple:
    state = load_campaign(campaign_dir)
    return (
        state.grid.to_json(),
        [record.to_json() for record in state.corpus],
        state.budget_spent,
        state.next_index,
    )


def _run(campaign_dir, budget, *, resume=False, jobs=1, batch_size=4, seed=7):
    return run_guided_campaign(
        campaign_dir,
        seed=seed,
        budget=budget,
        batch_size=batch_size,
        jobs=jobs,
        oracle_names=FAST_ORACLES,
        resume=resume,
        fsync=False,
    )


# ---------------------------------------------------------------------------
# edge kinds and grid primitives


SOURCE = """\
test ek
init x=0 y=0

thread P0
    S.rel x, 1
    fence st-ld
    r1 = L.acq y

thread P1
    S y, 2
    r2 = L x
"""


def test_edge_kinds_tags_and_pairs():
    kinds = program_edge_kinds(assemble_program(SOURCE))
    assert "St.rel" in kinds
    assert "F.st-ld" in kinds
    assert "Ld.acq" in kinds
    # Adjacent memory-op pairs, fences included.
    assert "St.rel>F.st-ld" in kinds
    assert "F.st-ld>Ld.acq" in kinds
    assert "St>Ld" in kinds
    assert "branch" not in kinds


def test_edge_kinds_branch_marker():
    program = generate_program(3, get_profile("branchy"))
    if program.has_branches():
        assert "branch" in program_edge_kinds(program)


def test_grid_add_merge_project_roundtrip():
    grid = CoverageGrid()
    c1 = ("St", "sc", "complete", "axiomatic-vs-sc:ok")
    c2 = ("St", "tso", "complete", "axiomatic-vs-tso:ok")
    assert grid.add({c1, c2}) == {c1, c2}
    assert grid.add({c1}) == frozenset()
    assert grid.cells[c1] == 2 and len(grid) == 2
    assert grid.project() == {("St", "sc", "complete"), ("St", "tso", "complete")}
    assert grid.min_count({c1}) == 2 and grid.min_count({c1, c2}) == 1

    other = CoverageGrid.from_json(grid.to_json())
    assert other.cells == grid.cells
    other.merge(grid)
    assert other.cells[c1] == 4

    assert other.is_superset_of(grid)
    grid.add({("Ld", "sc", "complete", "axiomatic-vs-sc:ok")})
    assert not other.is_superset_of(grid)


def test_program_digest_ignores_name():
    a = assemble_program(SOURCE)
    b = assemble_program(SOURCE.replace("test ek", "test other-name"))
    assert a.name != b.name
    assert program_digest(a) == program_digest(b)
    c = assemble_program(SOURCE.replace("S y, 2", "S y, 3"))
    assert program_digest(a) != program_digest(c)


def test_model_tables_digest_is_stable_hex():
    digest = model_tables_digest()
    assert digest == model_tables_digest()
    int(digest, 16)
    assert len(digest) == 32


# ---------------------------------------------------------------------------
# mutation operators


def test_mutation_candidates_valid_and_deterministic():
    program = generate_program(16, get_profile("relaxed"))
    candidates = mutation_candidates(program)
    assert candidates
    texts = [disassemble(candidate) for candidate in candidates]
    # Deterministic order.
    assert texts == [disassemble(c) for c in mutation_candidates(program)]
    # Every candidate is a well-formed program that survives a
    # disassemble → assemble round-trip.
    for text in texts:
        assert disassemble(assemble_program(text)) == text
    # Both halves are present: strictly smaller reductions and strictly
    # larger amplifications (fence insertion).
    base = program.instruction_count()
    sizes = {assemble_program(text).instruction_count() for text in texts}
    assert any(size < base for size in sizes)
    assert any(size > base for size in sizes)


# ---------------------------------------------------------------------------
# campaign state machinery (synthetic items — no enumeration needed)


def _synthetic_state(tmp_path: Path) -> tuple[CampaignState, Path]:
    config = CampaignConfig(seed=1, oracles=FAST_ORACLES, tables=model_tables_digest())
    directory = tmp_path / "camp"
    state = open_campaign(directory, config, resume=False)
    return state, directory


def test_state_roundtrip_and_crc(tmp_path):
    state, directory = _synthetic_state(tmp_path)
    state.grid.add({("St", "sc", "complete", "axiomatic-vs-sc:ok")})
    state.bloom.add(b"\x01" * 16)
    state.profile_programs["relaxed"] = 3
    state.profile_novelty["relaxed"] = 5
    state.next_index = 4
    state.budget_spent = 4
    save_state(state, directory)

    loaded = load_campaign(directory)
    assert loaded.grid.cells == state.grid.cells
    assert loaded.next_index == 4 and loaded.budget_spent == 4
    assert loaded.profile_programs == {"relaxed": 3}
    assert b"\x01" * 16 in loaded.bloom

    # Any body tamper breaks the checksum.
    path = directory / "state.json"
    payload = json.loads(path.read_text())
    payload["budget_spent"] = 999
    path.write_text(json.dumps(payload))
    with pytest.raises(ReproError, match="checksum"):
        load_campaign(directory)


def test_open_campaign_requires_resume_and_matching_config(tmp_path):
    state, directory = _synthetic_state(tmp_path)
    config = state.config
    with pytest.raises(ReproError, match="--resume"):
        open_campaign(directory, config, resume=False)
    # Resuming with the pinned config succeeds.
    assert open_campaign(directory, config, resume=True).config == config
    # Any planning parameter mismatch refuses.
    from dataclasses import replace

    with pytest.raises(ReproError, match="config mismatch"):
        open_campaign(directory, replace(config, seed=2), resume=True)
    with pytest.raises(ReproError, match="config mismatch"):
        open_campaign(directory, replace(config, batch_size=99), resume=True)
    # A different model-tables digest means the grid is incomparable.
    with pytest.raises(ReproError, match="model tables"):
        open_campaign(directory, replace(config, tables="0" * 32), resume=True)


def test_wal_fold_skips_already_checkpointed_batches(tmp_path):
    from repro.service.wal import WriteAheadLog

    state, directory = _synthetic_state(tmp_path)
    item = {
        "index": 0,
        "seed": 5,
        "profile": "relaxed",
        "source": "fresh",
        "digest": "ab" * 16,
        "text": "test t\nthread P0:\n  st x, 1\n",
        "cells": [["St", "sc", "complete", "axiomatic-vs-sc:ok"]],
        "fails": 0,
    }
    wal = WriteAheadLog(directory / "campaign.wal", fsync=False)
    wal.append("batch", "batch-0", {"start": 0, "items": [item]})
    # A stale record (start behind the checkpoint cursor) is skipped; a
    # matching one folds.
    loaded = load_campaign(directory)
    assert loaded.budget_spent == 1 and loaded.next_index == 1
    assert len(loaded.corpus) == 1
    assert loaded.corpus[0].new_cells == (("St", "sc", "complete", "axiomatic-vs-sc:ok"),)

    # Checkpoint past it: the same WAL record must now be ignored.
    save_state(loaded, directory)
    again = load_campaign(directory)
    assert again.budget_spent == 1 and again.next_index == 1
    wal.close()


def test_plan_batch_pure_function_of_state(tmp_path):
    state, _ = _synthetic_state(tmp_path)
    first = plan_batch(state, 6)
    second = plan_batch(state, 6)
    assert first == second
    assert [p.index for p in first] == list(range(6))
    # The first batch walks the round-robin, so profiles are diverse.
    assert len({p.profile for p in first}) >= 3


# ---------------------------------------------------------------------------
# guided campaigns: determinism and resume (the expensive seams)


def test_split_run_equals_uninterrupted_and_jobs_insensitive(tmp_path):
    _run(tmp_path / "whole", 8)
    _run(tmp_path / "split", 4)
    _run(tmp_path / "split", 4, resume=True)
    _run(tmp_path / "jobs", 8, jobs=2)

    whole = _fingerprint(tmp_path / "whole")
    assert _fingerprint(tmp_path / "split") == whole
    assert _fingerprint(tmp_path / "jobs") == whole
    # The checkpoint files themselves are byte-identical.
    assert (tmp_path / "whole" / "state.json").read_bytes() == (
        tmp_path / "split" / "state.json"
    ).read_bytes()


def test_budget_accumulates_and_report_counts(tmp_path):
    report = _run(tmp_path / "camp", 4)
    assert report.resumed_from == 0 and len(report.verdicts) == 4
    report = _run(tmp_path / "camp", 4, resume=True)
    assert report.resumed_from == 4
    state = load_campaign(tmp_path / "camp")
    assert state.budget_spent == 8 and state.next_index == 8
    assert len(state.grid) > 0
    text = coverage_report(tmp_path / "camp")
    assert "budget spent : 8" in text and "grid cells" in text


@settings(max_examples=4, deadline=None)
@given(
    split=st.sampled_from([0, 3]),
    jobs_a=st.integers(min_value=1, max_value=3),
    jobs_b=st.integers(min_value=1, max_value=3),
)
def test_grid_insensitive_to_split_and_jobs(tmp_path_factory, split, jobs_a, jobs_b):
    """Hypothesis property: however a 6-program campaign is sharded
    across runs (at batch-window boundaries — the only slicing resume
    itself ever produces) and across worker processes, the resulting
    coverage grid, corpus, and cursor are identical."""
    tmp_path = tmp_path_factory.mktemp("fuzzcov-prop")
    reference = tmp_path / "ref"
    _run(reference, 6, batch_size=3, seed=11)
    sliced = tmp_path / "sliced"
    if split:
        _run(sliced, split, batch_size=3, seed=11, jobs=jobs_a)
    _run(sliced, 6 - split, batch_size=3, seed=11, jobs=jobs_b, resume=bool(split))
    assert _fingerprint(sliced) == _fingerprint(reference)


def test_odd_budget_slice_realigns_to_window_grid(tmp_path):
    """A run whose budget is not a multiple of the batch size commits a
    short window; the next run completes that window and returns to the
    fixed window grid (next_index back on a batch_size multiple)."""
    campaign = tmp_path / "odd"
    _run(campaign, 1, batch_size=3, seed=11)
    state = load_campaign(campaign)
    assert state.next_index == 1
    _run(campaign, 5, batch_size=3, seed=11, resume=True)
    state = load_campaign(campaign)
    assert state.next_index == 6 and state.budget_spent == 6
    # From here on the campaign is indistinguishable from any aligned
    # one: a further aligned run matches a reference that diverged only
    # inside the first window.
    assert len(state.grid) > 0


@pytest.mark.slow
def test_kill9_mid_campaign_resumes_identically(tmp_path):
    """The ISSUE's cross-subsystem seam: cache-enabled parallel workers
    (jobs=2) under a campaign, SIGKILL mid-flight, resume — the grid and
    corpus must equal an uninterrupted run's exactly."""
    reference = tmp_path / "ref"
    _run(reference, 12, batch_size=3, seed=13)

    campaign = tmp_path / "killed"
    cache_dir = tmp_path / "cache"
    code = (
        "from repro.testing.coverage import run_guided_campaign\n"
        f"run_guided_campaign({str(campaign)!r}, seed=13, budget=12, batch_size=3, "
        f"jobs=2, cache_dir={str(cache_dir)!r}, oracle_names={FAST_ORACLES!r})\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parents[1] / "src"), env.get("PYTHONPATH", "")]
    )
    process = subprocess.Popen([sys.executable, "-c", code], env=env)
    time.sleep(2.5)
    if process.poll() is None:
        process.send_signal(signal.SIGKILL)
    process.wait()

    state = load_campaign(campaign)
    spent = 0 if state is None else state.budget_spent
    remaining = 12 - spent
    if remaining > 0:
        _run(campaign, remaining, batch_size=3, seed=13, resume=spent > 0)
    assert _fingerprint(campaign) == _fingerprint(reference)


def test_corpus_files_exported_and_loadable(tmp_path):
    from repro.testing.corpus import load_corpus

    _run(tmp_path / "camp", 6)
    state = load_campaign(tmp_path / "camp")
    entries = load_corpus(tmp_path / "camp" / "corpus")
    assert entries  # novelty in the first batches always banks something
    by_digest = {record.digest for record in state.corpus}
    for entry in entries:
        assert entry.cells  # the coverage header survives the round-trip
        assert program_digest(entry.program) in by_digest


# ---------------------------------------------------------------------------
# satellite: persistent partial-search checkpoints (enumeration dedup set)


def test_partial_checkpoint_resume_byte_identical(tmp_path):
    program = generate_program(33, get_profile("relaxed"))
    model = get_model("weak")
    full = enumerate_behaviors(program, model)
    assert full.complete

    cache = BehaviorCache(tmp_path / "cache")
    small = EnumerationLimits(max_behaviors=200)
    partial = enumerate_behaviors(program, model, small, cache=cache)
    assert not partial.complete
    assert cache.counters.partial_puts == 1
    assert cache.stats()["partial_checkpoints"] == 1

    resumed = enumerate_behaviors(program, model, cache=cache)
    assert cache.counters.partial_hits == 1
    assert resumed.complete
    keys = lambda r: sorted(repr(e.loadstore_key()) for e in r.executions)
    assert keys(resumed) == keys(full)
    # Byte-identical including the cumulative stats: the resumed search
    # continued exactly where it stopped.
    assert resumed.stats == full.stats
    # The checkpoint is retired once complete; the full result is cached.
    assert cache.counters.partial_drops == 1
    assert cache.stats()["partial_checkpoints"] == 0
    again = enumerate_behaviors(program, model, cache=cache)
    assert again.cached and keys(again) == keys(full)


def test_partial_checkpoint_same_budget_verdict_stable(tmp_path):
    program = generate_program(33, get_profile("relaxed"))
    model = get_model("weak")
    cache = BehaviorCache(tmp_path / "cache")
    small = EnumerationLimits(max_behaviors=200)
    first = enumerate_behaviors(program, model, small, cache=cache)
    second = enumerate_behaviors(program, model, small, cache=cache)
    keys = lambda r: sorted(repr(e.loadstore_key()) for e in r.executions)
    assert keys(first) == keys(second)
    assert first.complete == second.complete and first.reason == second.reason


def test_partial_checkpoint_damage_degrades_to_miss(tmp_path):
    program = generate_program(33, get_profile("relaxed"))
    model = get_model("weak")
    cache = BehaviorCache(tmp_path / "cache")
    enumerate_behaviors(program, model, EnumerationLimits(max_behaviors=200), cache=cache)
    (ckpt,) = (tmp_path / "cache" / "partial").glob("*.ckpt")
    ckpt.write_bytes(b"garbage")
    before = cache.counters.partial_misses
    assert cache.lookup_partial(program, model) is None
    assert not ckpt.exists()  # damaged checkpoint deleted
    assert cache.counters.partial_misses == before + 1


# ---------------------------------------------------------------------------
# satellite: replay-context memoization


def test_replay_contexts_memoized_per_program_and_mutant():
    paths = sorted(CORPUS_DIR.glob("*.litmus"))[:3]
    from repro.testing.corpus import load_entry

    entries = [load_entry(path) for path in paths]
    memo: dict = {}
    replay_entry(entries[0], context_cache=memo)
    assert len(memo) == 1
    (context,) = memo.values()
    assert isinstance(context, OracleContext)
    # The same entry replayed again reuses the same context object.
    replay_entry(entries[0], context_cache=memo)
    assert len(memo) == 1 and next(iter(memo.values())) is context
    # A different program gets its own context.
    replay_entry(entries[1], context_cache=memo)
    assert len(memo) == 2


def test_replay_mutant_and_healthy_contexts_never_shared():
    mutant_paths = [
        path
        for path in sorted(CORPUS_DIR.glob("*.litmus"))
        if "# fuzz-mutant:" in path.read_text()
    ]
    if not mutant_paths:
        pytest.skip("no mutant entries banked")
    from repro.testing.corpus import load_entry

    entry = load_entry(mutant_paths[0])
    memo: dict = {}
    replay_entry(entry, mutated=True, context_cache=memo)
    replay_entry(entry, mutated=False, context_cache=memo)
    # One context under the mutant, a distinct one on the healthy tree.
    assert len(memo) == 2
    assert {key[1] for key in memo} == {entry.mutant, None}


@pytest.mark.slow
def test_replay_full_corpus_within_wall_clock_budget():
    """Regression gate for the replay-staleness fix: replaying the whole
    banked corpus with the shared context memo stays well under a minute
    (it takes ~5s healthy; the bound only catches a reintroduced
    re-derivation blowup, not environmental noise)."""
    paths = sorted(CORPUS_DIR.glob("*.litmus"))
    start = time.monotonic()
    results = replay_paths(paths)
    elapsed = time.monotonic() - start
    assert len(results) == len(paths)
    for entry, discrepancies, _skipped in results:
        if entry.mutant:
            assert discrepancies, f"{entry.path}: mutant kill lost"
        else:
            assert not discrepancies, f"{entry.path}: healthy replay dirty"
    assert elapsed < 60.0, f"corpus replay took {elapsed:.1f}s"


# ---------------------------------------------------------------------------
# oracle coverage metadata


def test_every_oracle_declares_coverage_labels():
    from repro.models.registry import available_models

    models = set(available_models())
    for oracle in ORACLES:
        assert oracle.touches, f"{oracle.name} declares no coverage labels"
        for label in oracle.touches:
            base = label.split("+")[0]
            assert base in models, f"{oracle.name}: unknown label {label}"


def test_oracle_table_has_coverage_column():
    table = oracle_table()
    assert "coverage labels" in table.splitlines()[0]
    assert "`sc`" in table


def test_enumeration_reasons_labels():
    program = assemble_program(SOURCE)
    context = OracleContext(program, EnumerationLimits())
    context.result("sc")
    context.result("weak", pruned=True)
    reasons = context.enumeration_reasons()
    assert reasons["sc"] == "complete"
    assert reasons["weak+pruned"] == "complete"
