"""Unit tests for the textual assembly format."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble, assemble_program, parse_instruction, parse_operand
from repro.isa.instructions import (
    Branch,
    Compute,
    Fence,
    FenceKind,
    Load,
    Rmw,
    RmwKind,
    Store,
)
from repro.isa.operands import Const, Reg


class TestOperandParsing:
    def test_integer(self):
        assert parse_operand("42") == Const(42)
        assert parse_operand("-7") == Const(-7)

    def test_register(self):
        assert parse_operand("r1") == Reg("r1")
        assert parse_operand("r10") == Reg("r10")

    def test_location(self):
        assert parse_operand("x") == Const("x")
        assert parse_operand("flag_2") == Const("flag_2")

    def test_address_of(self):
        assert parse_operand("&y") == Const("y")

    def test_r_followed_by_letters_is_a_location(self):
        assert parse_operand("ready") == Const("ready")

    def test_garbage_rejected(self):
        with pytest.raises(AssemblerError):
            parse_operand("1x2!")


class TestInstructionParsing:
    def test_store(self):
        assert parse_instruction("S x, 1") == Store(Const("x"), Const(1))

    def test_store_register_indirect(self):
        assert parse_instruction("S r6, 7") == Store(Reg("r6"), Const(7))

    def test_load(self):
        assert parse_instruction("r1 = L x") == Load(Reg("r1"), Const("x"))

    def test_load_register_indirect(self):
        assert parse_instruction("r2 = L r1") == Load(Reg("r2"), Reg("r1"))

    def test_fence_default_and_kinds(self):
        assert parse_instruction("fence") == Fence()
        assert parse_instruction("fence st-ld") == Fence(FenceKind.STORE_LOAD)
        with pytest.raises(AssemblerError):
            parse_instruction("fence sideways")

    def test_compute(self):
        assert parse_instruction("r3 = add r1, 5") == Compute(
            Reg("r3"), "add", (Reg("r1"), Const(5))
        )

    def test_bare_assignment_is_mov(self):
        assert parse_instruction("r1 = 7") == Compute(Reg("r1"), "mov", (Const(7),))
        assert parse_instruction("r1 = x") == Compute(Reg("r1"), "mov", (Const("x"),))

    def test_branches(self):
        assert parse_instruction("bnez r1, out") == Branch("out", Reg("r1"), negate=False)
        assert parse_instruction("beqz r2, loop") == Branch("loop", Reg("r2"), negate=True)
        assert parse_instruction("jmp done") == Branch("done", None)

    def test_branch_requires_register(self):
        with pytest.raises(AssemblerError):
            parse_instruction("bnez x, out")

    def test_rmw_forms(self):
        assert parse_instruction("r1 = cas l, 0, 1") == Rmw(
            Reg("r1"), Const("l"), RmwKind.CAS, (Const(0), Const(1))
        )
        assert parse_instruction("r1 = xchg x, 9") == Rmw(
            Reg("r1"), Const("x"), RmwKind.EXCHANGE, (Const(9),)
        )
        assert parse_instruction("r1 = fadd c, 1") == Rmw(
            Reg("r1"), Const("c"), RmwKind.FETCH_ADD, (Const(1),)
        )

    def test_unparseable_line(self):
        with pytest.raises(AssemblerError):
            parse_instruction("hello world")


_SB_SOURCE = """
test SB
init x=0 y=0

thread P0
    S x, 1      # store then load
    r1 = L y

thread P1
    S y, 1
    r2 = L x

exists (P0:r1=0 /\\ P1:r2=0)
"""


class TestAssemble:
    def test_full_source(self):
        assembled = assemble(_SB_SOURCE)
        program = assembled.program
        assert program.name == "SB"
        assert [t.name for t in program.threads] == ["P0", "P1"]
        assert len(program.threads[0].code) == 2
        assert assembled.condition_text.startswith("exists")

    def test_comments_and_blank_lines_ignored(self):
        program = assemble_program("thread T\n\n  # nothing\n  S x, 1\n")
        assert len(program.threads[0].code) == 1

    def test_labels(self):
        program = assemble_program(
            """
            thread T
                r1 = L x
                bnez r1, out
                S y, 1
            out:
            """
        )
        assert program.threads[0].labels == {"out": 3}

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_program("thread T\nl:\nl:\n  S x, 1\n")

    def test_init_with_pointer_value(self):
        program = assemble_program("init x=w\nthread T\n  r1 = L x\n")
        assert program.initial_memory == {"x": "w"}
        assert "w" in program.locations()

    def test_instruction_before_thread_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_program("S x, 1\n")

    def test_no_threads_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_program("test empty\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble_program("thread T\n  S x, 1\n  whatever nonsense\n")
        assert "line 3" in str(excinfo.value)

    def test_round_trip_outcomes_match_dsl(self, sb_program, weak):
        """The assembled SB behaves identically to the DSL-built SB."""
        from repro.core import enumerate_behaviors

        assembled = assemble(_SB_SOURCE).program
        lhs = enumerate_behaviors(assembled, weak).register_outcomes()
        rhs = enumerate_behaviors(sb_program, weak).register_outcomes()
        assert lhs == rhs
