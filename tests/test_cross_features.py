"""Cross-feature integration: extensions composed with each other."""

import pytest

from repro.analysis.coverage import coherent_machine, measure_coverage, ooo_machine
from repro.core.enumerate import enumerate_behaviors
from repro.litmus.families import mp_chain, sb_ring
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.multibyte import MultibyteBuilder
from repro.operational.dataflow import run_dataflow
from repro.operational.storebuffer import run_tso
from repro.ooo import run_ooo


class TestDataflowOnFamilies:
    @pytest.mark.parametrize("n", [2, 3])
    def test_sb_ring_equivalence(self, n):
        program = sb_ring(n).program
        axiomatic = enumerate_behaviors(program, get_model("weak")).register_outcomes()
        assert run_dataflow(program, "weak").outcomes == axiomatic

    def test_mp_chain_equivalence(self):
        program = mp_chain(2).program
        axiomatic = enumerate_behaviors(program, get_model("weak")).register_outcomes()
        assert run_dataflow(program, "weak").outcomes == axiomatic


class TestMultibyteUnderTso:
    def test_tearing_program_axiomatic_equals_buffer_machine(self):
        builder = MultibyteBuilder("tear-tso")
        builder.thread("W").wide_store("x", 0x0101, 2)
        builder.thread("R").wide_load("r9", "x", 2)
        program, _ = builder.build()
        axiomatic = enumerate_behaviors(program, get_model("tso")).register_outcomes()
        assert run_tso(program).outcomes == axiomatic

    def test_byte_cells_on_ooo_core(self):
        builder = MultibyteBuilder("tear-ooo")
        builder.thread("W").wide_store("x", 0x0101, 2)
        builder.thread("R").wide_load("r9", "x", 2)
        program, _ = builder.build()
        tso = enumerate_behaviors(program, get_model("tso")).register_outcomes()
        for seed in range(40):
            assert run_ooo(program, seed=seed).registers in tso


class TestCoverageOnFamilies:
    def test_ooo_covers_sb_ring3(self):
        report = measure_coverage(sb_ring(3).program, ooo_machine, "tso", max_seeds=400)
        assert report.violations == 0
        # the ring has more outcomes than the classic SB; partial coverage
        # with a small budget is acceptable but must be nonzero
        assert report.curve[-1].distinct > 0

    def test_coherent_covers_mp_chain(self):
        report = measure_coverage(
            mp_chain(1).program, coherent_machine, "sc", max_seeds=300
        )
        assert report.violations == 0
        assert report.complete


class TestAnnotationsAcrossMachines:
    def test_mp_ra_on_all_machines(self):
        program = get_test("MP+ra").program
        stale = frozenset({(("P1", "r1"), 1), (("P1", "r2"), 0)})
        assert stale not in run_dataflow(program, "weak").outcomes
        assert stale not in run_tso(program).outcomes
        for seed in range(40):
            assert run_ooo(program, seed=seed).registers != stale

    def test_lock_handoff_on_ooo(self):
        program = get_test("lock-handoff").program
        for seed in range(40):
            registers = dict(run_ooo(program, seed=seed).registers)
            if registers.get(("P1", "r1")) == 0:
                assert registers[("P1", "r2")] == 42


class TestGeneratorMeetsFenceSynthesis:
    def test_synthesized_fences_kill_generated_cycle(self):
        from repro.analysis.fencesynth import synthesize_fences
        from repro.litmus.generator import EdgeKindSpec as E
        from repro.litmus.generator import generate

        generated = generate([E.FRE, E.POD_WR, E.FRE, E.POD_WR], "gen-sb-fs")
        synthesis = synthesize_fences(generated.test, "weak")
        assert synthesis.fence_count == 2

    def test_delays_cover_generated_cycle(self):
        from repro.analysis.compare import check_robustness
        from repro.analysis.delays import fence_delays
        from repro.litmus.generator import EdgeKindSpec as E
        from repro.litmus.generator import generate

        generated = generate(
            [E.POD_WW, E.RFE, E.POD_RW, E.WSE, E.POD_WW, E.WSE], "gen-z6-fs"
        )
        fenced = fence_delays(generated.test.program)
        assert check_robustness(fenced, "weak").robust
