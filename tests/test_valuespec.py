"""Tests for value speculation (safe vs naive machines)."""

import pytest
from hypothesis import given, settings

from repro.errors import ReproError
from repro.core.enumerate import enumerate_behaviors
from repro.core.valuespec import closure_satisfiable, enumerate_value_speculation
from repro.litmus.library import get_test
from repro.models.registry import get_model

from tests.test_properties import small_programs

STALE_MP = frozenset({(("P1", "r1"), 1), (("P1", "r2"), 0)})
BOTH_ZERO_SB = frozenset({(("P0", "r1"), 0), (("P1", "r2"), 0)})


class TestSafeSpeculation:
    @pytest.mark.parametrize("model_name", ["sc", "weak", "weak-corr"])
    def test_equals_standard_on_mp(self, mp_program, model_name):
        standard = enumerate_behaviors(
            mp_program, get_model(model_name)
        ).register_outcomes()
        speculated = enumerate_value_speculation(
            mp_program, model_name, validate=True
        ).register_outcomes()
        assert standard == speculated

    def test_equals_standard_on_rmw_program(self):
        program = get_test("INC+INC").program
        standard = enumerate_behaviors(program, get_model("sc")).register_outcomes()
        speculated = enumerate_value_speculation(program, "sc").register_outcomes()
        assert standard == speculated

    def test_all_safe_executions_closure_satisfiable(self, sb_program):
        result = enumerate_value_speculation(sb_program, "weak", validate=True)
        assert all(closure_satisfiable(e) for e in result.executions)
        assert not result.illegal


class TestNaiveSpeculation:
    def test_mp_stale_read_appears_and_is_flagged(self, mp_program):
        naive = enumerate_value_speculation(mp_program, "sc", validate=False)
        assert STALE_MP in naive.register_outcomes()
        assert STALE_MP in naive.violating_outcomes()
        assert naive.stats.unvalidated > 0

    def test_sb_both_zero_flagged(self, sb_program):
        naive = enumerate_value_speculation(sb_program, "sc", validate=False)
        assert BOTH_ZERO_SB in naive.violating_outcomes()

    def test_legal_outcomes_equal_standard(self, mp_program):
        naive = enumerate_value_speculation(mp_program, "sc", validate=False)
        standard = enumerate_behaviors(mp_program, get_model("sc")).register_outcomes()
        assert naive.legal_outcomes() == standard

    def test_weak_absorbs_the_mp_violation(self, mp_program):
        """Under WEAK the stale read is a LEGAL behavior, so the naive
        machine's extra behaviors shrink as the model weakens."""
        naive = enumerate_value_speculation(mp_program, "weak", validate=False)
        assert STALE_MP in naive.legal_outcomes()


class TestGuards:
    def test_bypass_models_rejected(self, sb_program):
        with pytest.raises(ReproError):
            enumerate_value_speculation(sb_program, "tso")


class TestPropertySafeEqualsStandard:
    @given(small_programs())
    @settings(max_examples=25, deadline=None)
    def test_safe_speculation_complete_and_sound(self, program):
        """On random programs: validated speculation ≡ standard under SC."""
        standard = enumerate_behaviors(program, get_model("sc")).register_outcomes()
        speculated = enumerate_value_speculation(program, "sc").register_outcomes()
        assert standard == speculated

    @given(small_programs())
    @settings(max_examples=20, deadline=None)
    def test_naive_legal_subset_is_standard(self, program):
        """Naive machine: legal outcomes ≡ standard; violations only add."""
        naive = enumerate_value_speculation(program, "sc", validate=False)
        standard = enumerate_behaviors(program, get_model("sc")).register_outcomes()
        assert naive.legal_outcomes() == standard
