"""Property tests for the Load–Store-graph projection in the renderer.

The paper erases non-memory nodes from its figures, "connecting
predecessors and successors of each erased node".  ``to_dot`` implements
that projection with a transitive-reduction heuristic; the property
checked here is exactness: the transitive closure of the drawn edges
over the kept nodes equals the ``⊑`` relation projected onto them.
"""

import re

from hypothesis import given, settings

from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.viz.dot import to_dot

from tests.test_properties import small_programs
from tests.test_properties_extended import annotated_programs

_EDGE_RE = re.compile(r"n(\d+) -> n(\d+)")


def _drawn_closure(dot_text: str) -> frozenset:
    edges = {(int(a), int(b)) for a, b in _EDGE_RE.findall(dot_text)}
    nodes = {n for edge in edges for n in edge}
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c, d in list(closure):
                if b == c and (a, d) not in closure and a != d:
                    closure.add((a, d))
                    changed = True
    return frozenset(closure), nodes


def _projected_truth(execution, kept_nodes) -> frozenset:
    graph = execution.graph
    return frozenset(
        (u, v)
        for u, v in graph.reachability_pairs()
        if u in kept_nodes and v in kept_nodes
    )


def _check(execution):
    dot = to_dot(execution.graph, memory_only=True, include_init=True)
    closure, nodes = _drawn_closure(dot)
    truth = _projected_truth(execution, nodes)
    # no invented orderings, no lost orderings
    assert closure == truth


class TestProjectionExactness:
    def test_figure_programs(self):
        from repro.experiments import fig3, fig5, fig7

        for module in (fig3, fig5, fig7):
            result = enumerate_behaviors(module.build_program(), get_model("weak"))
            for execution in result.executions[:3]:
                _check(execution)

    def test_fenced_litmus(self):
        for name in ("SB+fences", "MP+fences", "IRIW+fences"):
            result = enumerate_behaviors(get_test(name).program, get_model("weak"))
            for execution in result.executions[:2]:
                _check(execution)

    @given(small_programs())
    @settings(max_examples=15, deadline=None)
    def test_random_programs(self, program):
        result = enumerate_behaviors(program, get_model("weak"))
        _check(result.executions[0])

    @given(annotated_programs())
    @settings(max_examples=10, deadline=None)
    def test_random_annotated_programs(self, program):
        result = enumerate_behaviors(program, get_model("weak"))
        _check(result.executions[0])
