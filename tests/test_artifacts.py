"""Tests for figure-artifact generation."""

from repro.cli import main
from repro.experiments.artifacts import FIGURES, write_figures


class TestWriteFigures:
    def test_all_figures_written(self, tmp_path):
        written = write_figures(tmp_path)
        assert sorted(path.name for path in written) == sorted(FIGURES)
        for path in written:
            text = path.read_text()
            assert text.startswith("digraph execution {")
            assert text.rstrip().endswith("}")

    def test_fig11_contains_grey_bypass(self, tmp_path):
        write_figures(tmp_path)
        assert "gray60" in (tmp_path / "fig11.dot").read_text()

    def test_fig5_contains_atomicity_edges(self, tmp_path):
        write_figures(tmp_path)
        assert "dotted" in (tmp_path / "fig5.dot").read_text()

    def test_cli(self, tmp_path, capsys):
        assert main(["figures", "--out", str(tmp_path / "out")]) == 0
        assert "fig9.dot" in capsys.readouterr().out
