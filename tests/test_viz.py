"""Tests for the dot/ASCII renderers."""

from repro.core.enumerate import enumerate_behaviors
from repro.models.registry import get_model
from repro.viz.ascii import render
from repro.viz.dot import to_dot



def _one_execution(program, model="weak"):
    return enumerate_behaviors(program, get_model(model)).executions[0]


class TestDot:
    def test_valid_digraph_structure(self, sb_program):
        execution = _one_execution(sb_program)
        dot = to_dot(execution.graph, title="SB")
        assert dot.startswith("digraph execution {")
        assert dot.rstrip().endswith("}")
        assert 'label="SB"' in dot
        assert "subgraph cluster_T0" in dot
        assert "subgraph cluster_T1" in dot

    def test_init_hidden_by_default(self, sb_program):
        execution = _one_execution(sb_program)
        dot = to_dot(execution.graph)
        assert "cluster_init" not in dot
        dot_with_init = to_dot(execution.graph, include_init=True)
        assert "cluster_init" in dot_with_init

    def test_source_edges_ringed(self, sb_program):
        execution = _one_execution(sb_program)
        dot = to_dot(execution.graph, include_init=True)
        assert "arrowtail=odot" in dot

    def test_bypass_edges_grey(self):
        from repro.experiments.fig1011 import build_program

        execution = next(
            e
            for e in enumerate_behaviors(build_program(), get_model("tso")).executions
            if e.graph.bypass_edges()
        )
        dot = to_dot(execution.graph)
        assert "gray60" in dot

    def test_memory_only_erases_fences(self):
        from repro.experiments.fig3 import build_program

        execution = _one_execution(build_program())
        dot = to_dot(execution.graph, memory_only=True)
        assert "Fence" not in dot
        full = to_dot(execution.graph, memory_only=False)
        assert "Fence" in full


class TestAscii:
    def test_lists_threads_and_edges(self, sb_program):
        execution = _one_execution(sb_program)
        text = render(execution.graph)
        assert "thread 0:" in text and "thread 1:" in text
        assert "edges:" in text

    def test_observation_symbol(self, sb_program):
        execution = _one_execution(sb_program)
        assert "==obs==>" in render(execution.graph, include_init=True)

    def test_init_suppressed_by_default(self, sb_program):
        execution = _one_execution(sb_program)
        assert "init:" not in render(execution.graph)
