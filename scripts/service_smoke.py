#!/usr/bin/env python
"""CI smoke test for the analysis service's crash-recovery guarantee.

Starts ``repro serve`` as a real subprocess, submits an enumeration,
``kill -9``s the server mid-flight, restarts it on the same WAL
directory, and requires the recovered job to finish with a behavior set
byte-identical to a direct, uninterrupted ``enumerate_behaviors`` run.

Exits 0 and prints PASS on success; any broken guarantee exits 1.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.enumerate import enumerate_behaviors  # noqa: E402
from repro.errors import ServiceError  # noqa: E402
from repro.isa.assembler import assemble  # noqa: E402
from repro.models.registry import get_model  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobs import canonical_result  # noqa: E402

HEAVY_SOURCE = """
test heavy3
init x=0 y=0 z=0

thread W
    S x, 1
    S y, 1

thread P
    r1 = L x
    r2 = L y
    S z, 1

thread Q
    r3 = L z
    r4 = L y
    r5 = L x
"""


def start_server(wal_dir, slice_behaviors, slice_delay=0.0):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--wal-dir", str(wal_dir),
            "--workers", "1",
            "--slice", str(slice_behaviors),
            "--slice-delay", str(slice_delay),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit(f"FAIL: server did not announce its port: {line!r}")
    return process, f"http://127.0.0.1:{match.group(1)}"


def stop(process):
    if process.poll() is None:
        process.kill()
    process.wait(timeout=10)
    process.stdout.close()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        wal_dir = Path(tmp) / "service-data"

        # Phase 1: submit, observe the enumeration in flight, kill -9.
        process, url = start_server(wal_dir, slice_behaviors=40, slice_delay=0.15)
        try:
            client = ServiceClient(url)
            job = client.submit(HEAVY_SOURCE, model="weak")
            job_id = job["id"]
            print(f"submitted job {job_id}")

            in_flight = None
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status = client.status(job_id)
                if status["state"] == "running" and status["explored"] > 0:
                    in_flight = status
                    break
                if status["state"] not in ("queued", "running"):
                    print(f"FAIL: job reached {status['state']!r} before the kill")
                    return 1
                time.sleep(0.02)
            if in_flight is None:
                print("FAIL: never observed the job mid-enumeration")
                return 1
            print(f"killing server at explored={in_flight['explored']}")
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=10)
        finally:
            stop(process)

        try:
            ServiceClient(url, timeout=1.0).health()
            print("FAIL: dead server answered a request")
            return 1
        except ServiceError:
            pass

        # Phase 2: restart on the same WAL dir; the job must recover.
        process, url = start_server(wal_dir, slice_behaviors=1000)
        try:
            client = ServiceClient(url)
            done = client.wait(job_id, timeout=60)
        finally:
            stop(process)

        if done["state"] != "completed":
            print(f"FAIL: recovered job ended {done['state']!r}: "
                  f"{done.get('error', '')}")
            return 1
        if done["explored"] < in_flight["explored"]:
            print(f"FAIL: lost progress ({in_flight['explored']} -> "
                  f"{done['explored']})")
            return 1

        direct = enumerate_behaviors(
            assemble(HEAVY_SOURCE).program, get_model("weak")
        )
        served = json.dumps(done["result"], sort_keys=True)
        expected = json.dumps(canonical_result(direct), sort_keys=True)
        if served != expected:
            print(f"FAIL: results differ\n  served:   {served}\n"
                  f"  expected: {expected}")
            return 1

        print(f"recovered and completed: explored={done['explored']}, "
              f"{done['result']['executions']} executions, "
              f"{len(done['result']['outcomes'])} outcomes")
        print("PASS: SIGKILL recovery is byte-identical to a direct run")
        return 0


if __name__ == "__main__":
    sys.exit(main())
