"""Setup shim for environments without PEP 660 editable-install support.

All project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works with older setuptools/pip tool chains (the
legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
