"""TAB-CYCLES benchmark: cycle synthesis + verdict checking."""

from repro.litmus.generator import EdgeKindSpec as E
from repro.litmus.generator import generate, predict_verdict
from repro.litmus.runner import run_litmus

_SB_CYCLE = [E.FRE, E.POD_WR, E.FRE, E.POD_WR]
_IRIW_CYCLE = [E.RFE, E.POD_RR, E.FRE, E.RFE, E.POD_RR, E.FRE]


def test_generate_sb(benchmark):
    generated = benchmark(generate, _SB_CYCLE)
    assert len(generated.test.program.threads) == 2


def test_generate_iriw(benchmark):
    generated = benchmark(generate, _IRIW_CYCLE)
    assert len(generated.test.program.threads) == 4


def test_generated_verdict_weak(benchmark):
    generated = generate(_SB_CYCLE, "bench-gen-sb")
    verdict = benchmark(run_litmus, generated.test, "weak")
    assert verdict.holds == predict_verdict(generated, "weak")


def test_cycles_experiment(benchmark):
    from repro.experiments import cycles_exp

    result = benchmark(cycles_exp.run)
    assert result.passed, result.summary()
