"""FIG7 benchmark: the Store Atomicity closure cascade (edges a→d)."""

from repro.core.enumerate import enumerate_behaviors
from repro.experiments import fig7
from repro.models.registry import get_model


def test_fig7_experiment(benchmark):
    result = benchmark(fig7.run)
    assert result.passed, result.summary()


def test_fig7_enumeration(benchmark):
    program = fig7.build_program()
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, program, model)
    assert len(result) > 0
