"""FIG1 benchmark: regenerate the Weak Reordering Axioms table.

Regenerates paper Figure 1 and times table rendering plus the axiom
checks.  The assertions re-verify the paper's entries on every run.
"""

from repro.experiments import fig1


def test_fig1_table(benchmark):
    result = benchmark(fig1.run)
    assert result.passed, result.summary()
    assert "x != y" in result.details


def test_fig1_render_all_models(benchmark):
    from repro.models.registry import available_models, get_model

    def render_all():
        return [fig1.render_table(get_model(name)) for name in available_models()]

    tables = benchmark(render_all)
    assert len(tables) >= 7
