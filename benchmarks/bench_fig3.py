"""FIG3 benchmark: rule a — observed overwrites order stores.

Times the full enumeration + claim checking for paper Figure 3 and,
separately, the raw enumeration of the figure's program under WEAK.
"""

from repro.core.enumerate import enumerate_behaviors
from repro.experiments import fig3
from repro.models.registry import get_model


def test_fig3_experiment(benchmark):
    result = benchmark(fig3.run)
    assert result.passed, result.summary()


def test_fig3_enumeration(benchmark):
    program = fig3.build_program()
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, program, model)
    assert len(result) > 0
