"""Benchmark: the cost of each operational machine on one program.

Compares the interleaving SC machine, the store-buffer machines, the
dataflow machine, the coherent multiprocessor, and the out-of-order core
on the same litmus program, so regressions in any machine's constants
are visible side by side.
"""

from repro.coherence import run_coherent
from repro.litmus.library import get_test
from repro.ooo import run_ooo
from repro.operational.dataflow import run_dataflow
from repro.operational.sc import run_sc
from repro.operational.storebuffer import run_pso, run_tso

_MP = get_test("MP").program


def test_machine_sc(benchmark):
    result = benchmark(run_sc, _MP)
    assert result.terminal_states > 0


def test_machine_tso(benchmark):
    result = benchmark(run_tso, _MP)
    assert result.terminal_states > 0


def test_machine_pso(benchmark):
    result = benchmark(run_pso, _MP)
    assert result.terminal_states > 0


def test_machine_dataflow_weak(benchmark):
    result = benchmark(run_dataflow, _MP, "weak")
    assert result.terminal_states > 0


def test_machine_coherent(benchmark):
    run = benchmark(run_coherent, _MP, 5)
    assert run.transactions > 0


def test_machine_ooo(benchmark):
    run = benchmark(run_ooo, _MP, 5)
    assert run.steps > 0
