"""TAB-DELAYS benchmark: static delay-set analysis."""

from repro.analysis.delays import delay_set, fence_delays
from repro.analysis.compare import check_robustness
from repro.litmus.library import get_test

_IRIW = get_test("IRIW").program
_SB = get_test("SB").program


def test_delay_set_sb(benchmark):
    report = benchmark(delay_set, _SB)
    assert len(report.delays) == 2


def test_delay_set_iriw(benchmark):
    report = benchmark(delay_set, _IRIW)
    assert len(report.delays) == 2


def test_fence_and_verify_robust(benchmark):
    def analyze_and_verify():
        fenced = fence_delays(_SB)
        return check_robustness(fenced, "weak")

    report = benchmark(analyze_and_verify)
    assert report.robust


def test_delays_experiment(benchmark):
    from repro.experiments import delays_exp

    result = benchmark(delays_exp.run)
    assert result.passed, result.summary()
