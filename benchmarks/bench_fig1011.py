"""FIG10_11 benchmark: TSO bypass vs the operational store-buffer machine."""

from repro.core.enumerate import enumerate_behaviors
from repro.experiments import fig1011
from repro.models.registry import get_model
from repro.operational.storebuffer import run_tso


def test_fig1011_experiment(benchmark):
    result = benchmark(fig1011.run)
    assert result.passed, result.summary()


def test_fig1011_axiomatic_tso(benchmark):
    program = fig1011.build_program()
    model = get_model("tso")
    result = benchmark(enumerate_behaviors, program, model)
    assert fig1011.PAPER_OUTCOME in result.register_outcomes()


def test_fig1011_operational_tso(benchmark):
    program = fig1011.build_program()
    result = benchmark(run_tso, program)
    assert fig1011.PAPER_OUTCOME in result.outcomes
