"""TAB-MIXEDSIZE benchmark: byte-desugared wide accesses."""

from repro.core.enumerate import enumerate_behaviors
from repro.experiments.multibyte_exp import build_merge, build_tearing
from repro.models.registry import get_model
from repro.tm import enumerate_transactional


def test_tearing_enumeration(benchmark):
    program, _ = build_tearing()
    model = get_model("sc")
    result = benchmark(enumerate_behaviors, program, model)
    assert len(result) == 4


def test_single_copy_atomic_enumeration(benchmark):
    program, blocks = build_tearing()
    result = benchmark(enumerate_transactional, program, blocks, "sc")
    assert result.rejected > 0


def test_merge_enumeration(benchmark):
    program, blocks = build_merge()
    result = benchmark(enumerate_transactional, program, blocks, "sc")
    assert len(result) > 0


def test_multibyte_experiment(benchmark):
    from repro.experiments import multibyte_exp

    result = benchmark(multibyte_exp.run)
    assert result.passed, result.summary()
