"""TAB-LITMUS benchmark: the litmus × model outcome matrix.

Times representative slices of the matrix (the full 23 × 5 matrix runs in
the test suite; benchmarks keep the per-round work bounded) and asserts
the expected verdicts on every round.
"""

from repro.litmus.library import all_tests, get_test
from repro.litmus.runner import run_litmus, run_matrix

_CORE = ("SB", "MP", "LB", "IRIW", "CoRR")


def test_core_matrix_weak(benchmark):
    tests = [get_test(name) for name in _CORE]
    verdicts = benchmark(run_matrix, tests, ("weak",))
    assert all(v.matches_expectation for v in verdicts)


def test_core_matrix_all_models(benchmark):
    tests = [get_test(name) for name in _CORE]
    verdicts = benchmark(run_matrix, tests, ("sc", "tso", "pso", "weak"))
    assert all(v.matches_expectation for v in verdicts)


def test_iriw_fences_store_atomicity(benchmark):
    """The store-atomicity signature test: IRIW+fences forbidden even
    under the weakest table."""
    test = get_test("IRIW+fences")
    verdict = benchmark(run_litmus, test, "weak")
    assert not verdict.holds


def test_full_library_single_model(benchmark):
    tests = all_tests()
    verdicts = benchmark(run_matrix, tests, ("tso",))
    assert all(v.matches_expectation for v in verdicts)
