"""Benchmark: the persistent behavior cache on the litmus library.

Two sweeps over the litmus library × memory models, recorded in one
BENCH json (the perf trajectory):

* **Cold sweep**: a fresh cache directory; every enumeration is a miss
  and populates the store.  Per-cell wall time and the sorted
  Load–Store graph key sets are recorded.
* **Warm sweep**: a *new* :class:`~repro.cache.store.BehaviorCache`
  instance on the same directory (so the in-process LRU starts empty
  and every hit is served from disk through the bloom filter and
  segment index).

Four gates, all enforced on both the full and the ``--quick`` run:

* **Speedup floor**: warm sweep ≥5× faster than cold (wall clock).
* **Hit rate**: ≥99% of warm cells must be served from the cache
  (``result.cached``); in practice it is 100% — the floor tolerates
  only environmental noise, never a correctness bug.
* **Byte-identical results**: the sorted ``loadstore_key`` set of every
  warm cell must equal its cold counterpart exactly — a cache that is
  fast but wrong fails the build.
* **Bloom false-positive rate**: probing the warm cache with novel
  random keys must answer "definitely absent" (no disk touch) for
  >99% of them.

Exits nonzero when any gate fails.  The CI smoke job runs this with
``--quick`` (a model subset; the gates still bite).

Usage::

    PYTHONPATH=src python benchmarks/bench_cache.py [--quick]
        [--out BENCH_cache.json]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.cache import BehaviorCache
from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import all_tests
from repro.models.registry import available_models, get_model

#: Acceptance floor for the warm-over-cold wall-clock speedup.  A disk
#: hit (bloom + index + one pread + pickle) must beat re-enumeration by
#: a wide margin even on the library's smallest tests.
MIN_WARM_SPEEDUP = 5.0
#: Acceptance floor for the warm-sweep hit rate.
MIN_HIT_RATE = 0.99
#: Acceptance ceiling for the bloom filter's measured false-positive
#: rate on novel keys (the store sizes its filter for 0.5%).
MAX_BLOOM_FPR = 0.01
#: Novel-key probes for the false-positive measurement.
BLOOM_PROBES = 20000


def sweep_cells(quick: bool) -> list[tuple]:
    """(test, model_name) pairs — the library crossed with the models."""
    models = ("sc", "tso", "weak") if quick else available_models()
    return [(test, name) for test in all_tests() for name in models]


def run_sweep(cells: list[tuple], cache: BehaviorCache) -> tuple[float, list[dict]]:
    """One pass over the cells; returns (wall seconds, per-cell rows)."""
    rows = []
    start = time.perf_counter()
    for test, model_name in cells:
        cell_start = time.perf_counter()
        result = enumerate_behaviors(test.program, get_model(model_name), cache=cache)
        rows.append(
            {
                "test": test.name,
                "model": model_name,
                "cached": result.cached,
                "executions": len(result.executions),
                "seconds": time.perf_counter() - cell_start,
                "loadstore_keys": sorted(
                    repr(e.loadstore_key()) for e in result.executions
                ),
            }
        )
    return time.perf_counter() - start, rows


def measure_bloom_fpr(cache: BehaviorCache, probes: int) -> float:
    """Fraction of novel keys the bloom filter fails to reject.

    The probe keys are deterministic (hash of a counter) so the
    benchmark is reproducible; they cannot collide with real cache keys
    except by blake2b accident.
    """
    before = cache.counters.bloom_negatives
    for index in range(probes):
        key = hashlib.blake2b(b"bloom-probe-%d" % index, digest_size=16).digest()
        cache.lookup(key)
    rejected = cache.counters.bloom_negatives - before
    return (probes - rejected) / probes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="model subset (sc, tso, weak) instead of the full registry "
        "(CI smoke); all four gates still apply",
    )
    parser.add_argument(
        "--out",
        default="BENCH_cache.json",
        help="path for the BENCH json (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    cells = sweep_cells(args.quick)
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-cache-"))
    try:
        cold_cache = BehaviorCache(cache_dir)
        cold_seconds, cold_rows = run_sweep(cells, cold_cache)
        cold_cache.close()

        # A fresh instance on the same directory: the LRU starts empty,
        # so every warm hit exercises the full disk path.
        warm_cache = BehaviorCache(cache_dir)
        warm_seconds, warm_rows = run_sweep(cells, warm_cache)
        bloom_fpr = measure_bloom_fpr(warm_cache, BLOOM_PROBES)
        store_stats = warm_cache.stats()
        warm_cache.close()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    hits = sum(1 for row in warm_rows if row["cached"])
    hit_rate = hits / len(warm_rows)
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    identical = all(
        cold["loadstore_keys"] == warm["loadstore_keys"]
        for cold, warm in zip(cold_rows, warm_rows)
    )
    mismatches = [
        f"{cold['test']}/{cold['model']}"
        for cold, warm in zip(cold_rows, warm_rows)
        if cold["loadstore_keys"] != warm["loadstore_keys"]
    ]

    def strip(rows: list[dict]) -> list[dict]:
        # The key sets are compared above, not archived — 315 cells of
        # repr'd graphs would dwarf the rest of the json.
        return [
            {k: v for k, v in row.items() if k != "loadstore_keys"} for row in rows
        ]

    result = {
        "benchmark": "behavior-cache",
        "quick": args.quick,
        "cells": len(cells),
        "models": sorted({model for _, model in cells}),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": speedup,
        "warm_speedup_floor": MIN_WARM_SPEEDUP,
        "hit_rate": hit_rate,
        "hit_rate_floor": MIN_HIT_RATE,
        "results_identical": identical,
        "bloom_fpr_measured": bloom_fpr,
        "bloom_probes": BLOOM_PROBES,
        "bloom_fpr_ceiling": MAX_BLOOM_FPR,
        "store": store_stats,
        "cold": strip(cold_rows),
        "warm": strip(warm_rows),
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    print(
        f"BENCH cache: {len(cells)} cells "
        f"({len(result['models'])} models × {len(all_tests())} tests)"
    )
    print(
        f"BENCH cold={cold_seconds:.2f}s warm={warm_seconds:.2f}s "
        f"speedup={speedup:.1f}x  hit rate={hit_rate:.1%}  "
        f"bloom FPR={bloom_fpr:.3%} ({BLOOM_PROBES} probes)"
    )
    print(
        f"BENCH store: {store_stats['live_entries']} entries in "
        f"{store_stats['segments']} segment(s), "
        f"{store_stats['disk_bytes']} bytes"
    )
    print(f"BENCH json written to {args.out}")

    status = 0
    if speedup < MIN_WARM_SPEEDUP:
        print(
            f"FAIL: warm sweep only {speedup:.2f}x faster than cold "
            f"(floor {MIN_WARM_SPEEDUP}x)",
            file=sys.stderr,
        )
        status = 1
    if hit_rate < MIN_HIT_RATE:
        print(
            f"FAIL: warm hit rate {hit_rate:.1%} < {MIN_HIT_RATE:.0%}",
            file=sys.stderr,
        )
        status = 1
    if not identical:
        print(
            f"FAIL: cached results differ from fresh enumeration for "
            f"{', '.join(mismatches)}",
            file=sys.stderr,
        )
        status = 1
    if bloom_fpr > MAX_BLOOM_FPR:
        print(
            f"FAIL: bloom false-positive rate {bloom_fpr:.3%} > "
            f"{MAX_BLOOM_FPR:.0%}",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
