"""Benchmark: the sharded parallel engine and the copy-on-write hot path.

Three sections, all recorded in one BENCH json (the perf trajectory):

* **Scaling programs** (TAB-SCALE's families, at sizes where a single
  enumeration takes real wall-clock time): sequential vs parallel with
  2 and 4 workers, with an outcome-equality gate — the parallel engine
  must return the identical sorted Load–Store graph set and register
  outcomes.
* **Speedup floor**: ≥1.5× at workers=4 on the scaling programs.  The
  gate is enforced only when the machine actually has ≥4 CPUs;
  otherwise it is recorded as skipped (with the reason) — a speedup
  floor on a single-core container would measure the scheduler, not the
  engine.
* **Hot-path microbenchmarks**: per-branch cost of `Execution.copy()`
  (copy-on-write) vs an eager deep graph copy (what the seed did), and
  of the bitset-derived `state_key()` vs a faithful reconstruction of
  the seed's key (which re-materialized the full reachability relation
  per child).  Gated: COW copy must beat eager copy by ≥1.2×, and the
  combined per-branch copy+key cost must beat the seed's by ≥1.1×.

Exits nonzero when any gate fails.  The CI smoke job runs this with
``--quick`` (smaller programs, workers=2 only — the equality gates still
bite; the speedup floor needs the full run on a multicore machine).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]
        [--out BENCH_parallel.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.enumerate import ParallelEnumerationConfig, enumerate_behaviors
from repro.experiments.scaling import chain_program, sb_chain
from repro.litmus.families import mp_chain, sb_ring
from repro.litmus.library import get_test
from repro.models.registry import get_model

#: Acceptance floor for the workers=4 speedup on the scaling programs
#: (geometric mean), enforced when the machine has ≥4 CPUs.
MIN_SPEEDUP = 1.5
#: Acceptance floor for copy-on-write vs eager copy in the microbench.
MIN_COPY_RATIO = 1.2
#: Acceptance floor for the combined per-branch cost (copy + state_key)
#: vs the seed's (eager copy + materialized-reachability key) — the
#: number the search actually pays per Load-Resolution branch.
MIN_BRANCH_RATIO = 1.1


def scaling_workloads(quick: bool) -> list[tuple]:
    """(program, model_name) pairs where enumeration takes real time."""
    if quick:
        return [
            (chain_program(4), "weak"),
            (sb_chain(2), "weak"),
        ]
    return [
        (chain_program(4), "weak"),
        (chain_program(5), "weak"),
        (sb_chain(2), "weak"),
        (sb_ring(3).program, "tso"),
        (mp_chain(2).program, "weak"),
    ]


def geometric_mean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def bench_scaling(quick: bool) -> tuple[list[dict], bool]:
    worker_counts = (2,) if quick else (2, 4)
    rows = []
    all_equal = True
    for program, model_name in scaling_workloads(quick):
        model = get_model(model_name)
        start = time.perf_counter()
        sequential = enumerate_behaviors(program, model)
        seq_seconds = time.perf_counter() - start
        row = {
            "program": program.name,
            "model": model_name,
            "executions": len(sequential),
            "explored": sequential.stats.explored,
            "seconds_sequential": seq_seconds,
        }
        for workers in worker_counts:
            config = ParallelEnumerationConfig(workers=workers)
            start = time.perf_counter()
            parallel = enumerate_behaviors(program, model, parallel=config)
            row[f"seconds_workers_{workers}"] = time.perf_counter() - start
            equal = parallel.complete and (
                [e.loadstore_key() for e in parallel.executions]
                == [e.loadstore_key() for e in sequential.executions]
                and parallel.register_outcomes() == sequential.register_outcomes()
            )
            row[f"equal_workers_{workers}"] = equal
            all_equal &= equal
        rows.append(row)
    return rows, all_equal


def seed_style_state_key(behavior) -> tuple:
    """A faithful reconstruction of the seed's ``state_key`` — node
    states plus the *fully materialized* reachability relation as a
    frozenset of identity pairs — used as the microbench baseline the
    bitset-derived key is measured against."""
    graph = behavior.graph
    identity = {node.nid: (node.tid, node.index) for node in graph.nodes}
    node_states = tuple(
        sorted(
            (
                node.tid,
                node.index,
                node.op_class.value,
                node.executed,
                node.value,
                node.addr,
                identity[node.source] if node.source is not None else None,
                node.writes,
                node.stored,
            )
            for node in graph.nodes
        )
    )
    order_pairs = frozenset(
        (identity[u], identity[v]) for u, v in graph.reachability_pairs()
    )
    bypass = frozenset(
        (identity[u], identity[v]) for u, v in graph.bypass_edges()
    )
    thread_states = tuple(
        (
            state.pc,
            state.halted,
            state.waiting_branch is not None,
            tuple(sorted((reg, identity[nid]) for reg, nid in state.regs.items())),
        )
        for state in behavior.threads
    )
    pending = frozenset(
        (identity[u], identity[v]) for u, v in behavior.pending_alias
    )
    return (node_states, order_pairs, bypass, thread_states, pending)


def bench_hot_path() -> dict:
    """Per-branch microbenchmarks on a representative mid-search state."""
    program = chain_program(5)
    model = get_model("weak")
    # A behavior some way into the search: enumerate a few behaviors and
    # keep the deepest worklist entry of a budgeted run.
    from repro.core.enumerate import EnumerationLimits

    partial = enumerate_behaviors(
        program, model, EnumerationLimits(max_behaviors=40)
    )
    behavior = partial.checkpoint.worklist[-1]

    def per_call_us(function, repeats: int = 2000, trials: int = 5) -> float:
        # Best-of-N: the minimum is the least noise-contaminated
        # estimate of the true per-call cost.
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            for _ in range(repeats):
                function()
            best = min(best, (time.perf_counter() - start) / repeats * 1e6)
        return best

    cow_copy_us = per_call_us(behavior.copy)
    eager_copy_us = per_call_us(behavior.graph.copy)  # the seed's copy
    state_key_us = per_call_us(behavior.state_key)
    loadstore_key_us = per_call_us(behavior.loadstore_key)
    seed_key_us = per_call_us(lambda: seed_style_state_key(behavior))

    branch_us = cow_copy_us + state_key_us
    seed_branch_us = eager_copy_us + seed_key_us
    return {
        "graph_nodes": len(behavior.graph.nodes),
        "cow_copy_us": cow_copy_us,
        "eager_copy_us": eager_copy_us,
        "copy_ratio": eager_copy_us / cow_copy_us if cow_copy_us else 0.0,
        "state_key_us": state_key_us,
        "loadstore_key_us": loadstore_key_us,
        "seed_state_key_us": seed_key_us,
        "branch_us": branch_us,
        "seed_branch_us": seed_branch_us,
        "branch_ratio": seed_branch_us / branch_us if branch_us else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller programs, workers=2 only (CI smoke)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_parallel.json",
        help="path for the BENCH json (default: %(default)s)",
    )
    parser.add_argument(
        "--require-speedup-gate",
        action="store_true",
        help="fail (instead of recording a skip) when the workers=4 "
        "speedup floor cannot be enforced — for CI jobs that promise "
        "a ≥4-CPU runner, so a silently skipped gate cannot pass",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    rows, all_equal = bench_scaling(args.quick)
    hot_path = bench_hot_path()

    speedups = [
        row["seconds_sequential"] / row["seconds_workers_4"]
        for row in rows
        if row.get("seconds_workers_4")
    ]
    speedup_mean = geometric_mean(speedups)
    enforce_speedup = cpus >= 4 and not args.quick
    speedup_skip_reason = None
    if not enforce_speedup:
        speedup_skip_reason = (
            "--quick run (workers=4 not measured)"
            if args.quick
            else f"machine has {cpus} CPU(s) < 4 — a speedup floor here "
            f"would measure the scheduler, not the engine"
        )

    result = {
        "benchmark": "parallel-enumeration",
        "quick": args.quick,
        "cpu_count": cpus,
        "scaling": rows,
        "all_outcomes_equal": all_equal,
        "speedup_workers_4_geomean": speedup_mean if speedups else None,
        "speedup_floor": MIN_SPEEDUP,
        "speedup_gate_enforced": enforce_speedup,
        "speedup_gate_skip_reason": speedup_skip_reason,
        "hot_path": hot_path,
        "copy_ratio_floor": MIN_COPY_RATIO,
        "branch_ratio_floor": MIN_BRANCH_RATIO,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    for row in rows:
        timings = "  ".join(
            f"w{workers}={row[f'seconds_workers_{workers}']:.2f}s"
            for workers in (2, 4)
            if f"seconds_workers_{workers}" in row
        )
        print(
            f"BENCH {row['program']}/{row['model']}: "
            f"seq={row['seconds_sequential']:.2f}s  {timings}  "
            f"({row['executions']} executions)"
        )
    print(
        f"BENCH hot path ({hot_path['graph_nodes']} nodes): "
        f"copy {hot_path['cow_copy_us']:.1f}µs (eager {hot_path['eager_copy_us']:.1f}µs, "
        f"{hot_path['copy_ratio']:.1f}x), "
        f"state_key {hot_path['state_key_us']:.1f}µs, "
        f"loadstore_key {hot_path['loadstore_key_us']:.1f}µs; "
        f"per-branch copy+key {hot_path['branch_us']:.1f}µs vs seed "
        f"{hot_path['seed_branch_us']:.1f}µs ({hot_path['branch_ratio']:.2f}x)"
    )
    if speedups:
        print(f"BENCH speedup at workers=4 (geomean): {speedup_mean:.2f}x")
    if speedup_skip_reason:
        print(f"BENCH speedup gate skipped: {speedup_skip_reason}")
    print(f"BENCH json written to {args.out}")

    status = 0
    if not all_equal:
        print("FAIL: parallel and sequential outcomes differ", file=sys.stderr)
        status = 1
    if args.require_speedup_gate and not enforce_speedup:
        print(
            f"FAIL: --require-speedup-gate but the gate was skipped "
            f"({speedup_skip_reason})",
            file=sys.stderr,
        )
        status = 1
    if enforce_speedup and speedup_mean < MIN_SPEEDUP:
        print(
            f"FAIL: workers=4 speedup {speedup_mean:.2f}x < {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        status = 1
    if hot_path["copy_ratio"] < MIN_COPY_RATIO:
        print(
            f"FAIL: copy-on-write copy only {hot_path['copy_ratio']:.2f}x faster "
            f"than eager copy (floor {MIN_COPY_RATIO}x)",
            file=sys.stderr,
        )
        status = 1
    if hot_path["branch_ratio"] < MIN_BRANCH_RATIO:
        print(
            f"FAIL: per-branch copy+key cost only {hot_path['branch_ratio']:.2f}x "
            f"better than seed (floor {MIN_BRANCH_RATIO}x)",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
