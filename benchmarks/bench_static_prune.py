"""Benchmark: enumeration with dataflow facts vs without.

Sweeps the full litmus library (plus the Figure 8/9 programs) under
several models, enumerating each (test, model) pair twice — once
baseline, once with :func:`compute_static_facts` handed to the
enumerator — and emits a BENCH json recording, per pair, the
candidate-store scan counts, the statically-pruned share, wall-clock for
both runs, and whether the outcome sets agree (they must: pruning is
required to be a pure accelerator).

Exits nonzero when any outcome set differs or when the mean scan
reduction on register-computed-address tests falls below 20% — the CI
smoke job runs this with ``--quick``.

Usage::

    PYTHONPATH=src python benchmarks/bench_static_prune.py [--quick]
        [--out bench_static_prune.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.static.dataflow import compute_static_facts
from repro.core.enumerate import enumerate_behaviors
from repro.experiments.dataflow_exp import uses_register_addresses
from repro.experiments.fig89 import build_aliasing_program, build_program
from repro.litmus.library import all_tests
from repro.models.registry import get_model

FULL_MODELS = ("sc", "tso", "pso", "weak", "weak-spec")
QUICK_MODELS = ("weak", "weak-spec")

#: Acceptance floor for the mean scan reduction on register-address tests.
MIN_REGISTER_REDUCTION = 0.20


def run_benchmark(models: tuple[str, ...]) -> dict:
    programs = [test.program for test in all_tests()]
    programs.append(build_program())
    programs.append(build_aliasing_program())

    rows = []
    per_test_reduction: dict[str, float] = {}
    register_tests: list[str] = []
    all_equal = True
    for program in programs:
        facts = compute_static_facts(program)
        register_addresses = uses_register_addresses(program)
        scanned_total = pruned_total = 0
        for model_name in models:
            model = get_model(model_name)
            start = time.perf_counter()
            baseline = enumerate_behaviors(program, model)
            seconds_baseline = time.perf_counter() - start
            start = time.perf_counter()
            accelerated = enumerate_behaviors(program, model, facts=facts)
            seconds_pruned = time.perf_counter() - start
            equal = baseline.register_outcomes() == accelerated.register_outcomes()
            all_equal &= equal
            scanned = accelerated.stats.candidates_scanned
            pruned = accelerated.stats.candidates_pruned
            scanned_total += scanned
            pruned_total += pruned
            rows.append(
                {
                    "test": program.name,
                    "model": model_name,
                    "register_addresses": register_addresses,
                    "candidates_considered": scanned,
                    "candidates_pruned": pruned,
                    "reduction": pruned / scanned if scanned else 0.0,
                    "seconds_baseline": seconds_baseline,
                    "seconds_pruned": seconds_pruned,
                    "outcomes_equal": equal,
                }
            )
        if scanned_total:
            per_test_reduction[program.name] = pruned_total / scanned_total
            if register_addresses:
                register_tests.append(program.name)

    register_mean = sum(per_test_reduction[name] for name in register_tests) / max(
        len(register_tests), 1
    )
    return {
        "benchmark": "static-prune",
        "models": list(models),
        "tests": rows,
        "register_address_tests": register_tests,
        "mean_reduction_register_computed": register_mean,
        "mean_reduction_all": sum(per_test_reduction.values())
        / max(len(per_test_reduction), 1),
        "all_outcomes_equal": all_equal,
        "seconds_baseline_total": sum(row["seconds_baseline"] for row in rows),
        "seconds_pruned_total": sum(row["seconds_pruned"] for row in rows),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"sweep only {QUICK_MODELS} instead of {FULL_MODELS}",
    )
    parser.add_argument(
        "--out",
        default="bench_static_prune.json",
        help="path for the BENCH json (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(QUICK_MODELS if args.quick else FULL_MODELS)
    result["quick"] = args.quick
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    mismatches = [
        f"{row['test']}/{row['model']}"
        for row in result["tests"]
        if not row["outcomes_equal"]
    ]
    print(
        f"BENCH static-prune: {len(result['tests'])} (test, model) pairs, "
        f"mean scan reduction {result['mean_reduction_all']:.0%} overall, "
        f"{result['mean_reduction_register_computed']:.0%} on register-address "
        f"tests ({', '.join(result['register_address_tests'])})"
    )
    print(
        f"BENCH wall-clock: baseline {result['seconds_baseline_total']:.2f}s, "
        f"with facts {result['seconds_pruned_total']:.2f}s"
    )
    print(f"BENCH json written to {args.out}")

    status = 0
    if mismatches:
        print(f"FAIL: outcome sets differ on {', '.join(mismatches)}", file=sys.stderr)
        status = 1
    if result["mean_reduction_register_computed"] < MIN_REGISTER_REDUCTION:
        print(
            f"FAIL: register-address mean reduction "
            f"{result['mean_reduction_register_computed']:.0%} "
            f"< {MIN_REGISTER_REDUCTION:.0%}",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
