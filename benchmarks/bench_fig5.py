"""FIG5 benchmark: rule c — parallel observations order third parties.

Figure 5 is the largest figure program (three threads, nine memory
operations), so it also serves as the closure-stress benchmark.
"""

from repro.core.enumerate import enumerate_behaviors
from repro.experiments import fig5
from repro.models.registry import get_model


def test_fig5_experiment(benchmark):
    result = benchmark(fig5.run)
    assert result.passed, result.summary()


def test_fig5_enumeration(benchmark):
    program = fig5.build_program()
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, program, model)
    assert len(result) > 0
