"""TAB-TRACECHECK benchmark: post-mortem trace validation cost."""

from repro.analysis.tracecheck import check_trace
from repro.experiments.tracecheck_exp import double_fig5_trace, fig5_trace, sb_trace


def test_sb_trace_check(benchmark):
    trace = sb_trace(0, 0)
    verdict = benchmark(check_trace, trace, "weak")
    assert verdict.accepted


def test_fig5_trace_check(benchmark):
    trace = fig5_trace(2, 4, 6, 8)
    verdict = benchmark(check_trace, trace, "weak")
    assert verdict.accepted


def test_double_fig5_full_rules(benchmark):
    witness = double_fig5_trace()
    verdict = benchmark(check_trace, witness, "weak", "abc")
    assert not verdict.accepted


def test_double_fig5_ab_rules(benchmark):
    witness = double_fig5_trace()
    verdict = benchmark(check_trace, witness, "weak", "ab")
    assert verdict.accepted


def test_tracecheck_experiment(benchmark):
    from repro.experiments import tracecheck_exp

    result = benchmark(tracecheck_exp.run)
    assert result.passed, result.summary()
