"""TAB-RELACQ benchmark: acquire/release annotated programs."""

from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import get_test
from repro.litmus.runner import run_litmus
from repro.models.registry import get_model


def test_mp_ra_weak(benchmark):
    verdict = benchmark(run_litmus, get_test("MP+ra"), "weak")
    assert not verdict.holds


def test_sb_ra_tso(benchmark):
    verdict = benchmark(run_litmus, get_test("SB+ra"), "tso")
    assert verdict.holds


def test_lock_handoff_enumeration(benchmark):
    program = get_test("lock-handoff").program
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, program, model)
    assert len(result) > 0


def test_relacq_experiment(benchmark):
    from repro.experiments import relacq_exp

    result = benchmark(relacq_exp.run)
    assert result.passed, result.summary()
