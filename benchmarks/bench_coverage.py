"""Benchmark: schedule-coverage measurement of the single-run machines."""

from repro.analysis.coverage import coherent_machine, measure_coverage, ooo_machine
from repro.litmus.library import get_test

_SB = get_test("SB").program
_MP = get_test("MP").program


def test_coverage_ooo_sb(benchmark):
    report = benchmark(measure_coverage, _SB, ooo_machine, "tso", 200)
    assert report.complete and report.violations == 0


def test_coverage_coherent_mp(benchmark):
    report = benchmark(measure_coverage, _MP, coherent_machine, "sc", 200)
    assert report.complete and report.violations == 0
