"""Microbenchmarks of the core engine: graph ops, closure, candidates,
serialization search.  These track the constants behind every experiment.
"""

from repro.core.atomicity import close_store_atomicity
from repro.core.candidates import candidate_stores
from repro.core.execution import Execution
from repro.core.graph import EdgeKind, ExecutionGraph
from repro.core.node import Node
from repro.core.serialization import find_serialization
from repro.core.enumerate import enumerate_behaviors
from repro.experiments.fig5 import build_program as build_fig5
from repro.isa.instructions import OpClass
from repro.litmus.library import get_test
from repro.models.registry import get_model


def _chain_graph(n: int) -> ExecutionGraph:
    graph = ExecutionGraph()
    for i in range(n):
        graph.add_node(Node(i, 0, i, None, OpClass.COMPUTE))
    return graph


def test_edge_insertion_chain(benchmark):
    def build():
        graph = _chain_graph(64)
        for i in range(63):
            graph.add_edge(i, i + 1, EdgeKind.PROGRAM)
        return graph

    graph = benchmark(build)
    assert graph.before(0, 63)


def test_edge_insertion_dense(benchmark):
    def build():
        graph = _chain_graph(32)
        for v in range(32):
            for u in range(v):
                graph.add_edge(u, v, EdgeKind.PROGRAM)
        return graph

    graph = benchmark(build)
    assert graph.before(0, 31)


def test_graph_copy(benchmark):
    graph = _chain_graph(64)
    for i in range(63):
        graph.add_edge(i, i + 1, EdgeKind.PROGRAM)
    duplicate = benchmark(graph.copy)
    assert duplicate.before(0, 63)


def test_closure_on_fig5_execution(benchmark):
    execution = enumerate_behaviors(build_fig5(), get_model("weak")).executions[0]

    def reclose():
        return close_store_atomicity(execution.graph)

    added = benchmark(reclose)
    assert added == 0  # already at a fixpoint: measures the scan cost


def test_candidate_computation(benchmark):
    execution = Execution.initial(get_test("IRIW").program, get_model("weak"))
    loads = execution.eligible_loads()

    def all_candidates():
        return [candidate_stores(execution, load) for load in loads]

    candidate_sets = benchmark(all_candidates)
    assert all(candidate_sets)


def test_serialization_witness_search(benchmark):
    execution = enumerate_behaviors(build_fig5(), get_model("weak")).executions[0]
    witness = benchmark(find_serialization, execution)
    assert witness is not None


def test_state_key(benchmark):
    execution = Execution.initial(get_test("IRIW").program, get_model("weak"))
    key = benchmark(execution.state_key)
    assert key


def test_execution_copy(benchmark):
    execution = Execution.initial(get_test("IRIW").program, get_model("weak"))
    duplicate = benchmark(execution.copy)
    assert duplicate.state_key() == execution.state_key()
