"""Ablation benchmarks for the design choices DESIGN.md calls out.

* canonical-state deduplication (§4.1's duplicate-discard step): time the
  same enumeration with and without it,
* bitset reachability: time reachability-heavy closure work on the
  largest figure program,
* imposed conservative orderings (§4.2): enumeration under a model made
  maximally conservative (SC) vs the relaxed table, on the same program.
"""

from repro.core.enumerate import EnumerationLimits, enumerate_behaviors
from repro.experiments.fig5 import build_program as build_fig5
from repro.experiments.scaling import chain_program
from repro.models.registry import get_model

_PROGRAM = chain_program(3)
_LIMITS = EnumerationLimits(max_behaviors=5_000_000)


def test_enumeration_with_dedup(benchmark):
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, _PROGRAM, model, _LIMITS, True)
    assert result.stats.duplicates > 0


def test_enumeration_without_dedup(benchmark):
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, _PROGRAM, model, _LIMITS, False)
    assert result.stats.duplicates == 0


def test_conservative_model_prunes_search(benchmark):
    """SC's eager orderings shrink the candidate sets — the §4.2
    'conservative approximation' effect on enumeration cost."""
    model = get_model("sc")
    result = benchmark(enumerate_behaviors, build_fig5(), model, _LIMITS)
    relaxed = enumerate_behaviors(build_fig5(), get_model("weak"), _LIMITS)
    assert len(result) < len(relaxed)
