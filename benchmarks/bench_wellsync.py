"""TAB-WSYNC benchmark: the §8 well-synchronization checker."""

from repro.analysis.wellsync import check_well_synchronized
from repro.experiments.wellsync_exp import build_guarded_mp
from repro.litmus.library import get_test

_MP = get_test("MP").program
_GUARDED = build_guarded_mp(reader_fence=True)


def test_racy_mp_check(benchmark):
    report = benchmark(check_well_synchronized, _MP, "weak", {"flag"})
    assert not report.well_synchronized


def test_guarded_mp_check(benchmark):
    report = benchmark(check_well_synchronized, _GUARDED, "weak", {"flag"})
    assert report.well_synchronized


def test_cas_lock_check(benchmark):
    program = get_test("CAS-lock").program
    report = benchmark(check_well_synchronized, program, "weak", {"l"})
    assert report.well_synchronized
