"""TAB-SCALE benchmark: enumeration cost vs program size.

Parametrized sweeps over the fan-out and SB-chain program families from
the scaling experiment, timing the full enumeration at each size.
"""

import pytest

from repro.core.enumerate import EnumerationLimits, enumerate_behaviors
from repro.experiments.scaling import chain_program, sb_chain
from repro.models.registry import get_model

_LIMITS = EnumerationLimits(max_behaviors=5_000_000)


@pytest.mark.parametrize("writers", [1, 2, 3, 4])
def test_fanout_enumeration(benchmark, writers):
    program = chain_program(writers)
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, program, model, _LIMITS)
    assert len(result) >= 1


@pytest.mark.parametrize("pairs", [1, 2])
def test_sb_chain_enumeration(benchmark, pairs):
    program = sb_chain(pairs)
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, program, model, _LIMITS)
    assert len(result) == 4**pairs


@pytest.mark.parametrize("model_name", ["sc", "tso", "pso", "weak"])
def test_model_cost_on_fanout(benchmark, model_name):
    program = chain_program(3)
    model = get_model(model_name)
    result = benchmark(enumerate_behaviors, program, model, _LIMITS)
    assert len(result) >= 1


@pytest.mark.parametrize("ring", [2, 3])
def test_sb_ring_family(benchmark, ring):
    from repro.litmus.families import sb_ring

    program = sb_ring(ring).program
    model = get_model("tso")
    result = benchmark(enumerate_behaviors, program, model, _LIMITS)
    assert len(result) >= 1


@pytest.mark.parametrize("hops", [1, 2])
def test_mp_chain_family(benchmark, hops):
    from repro.litmus.families import mp_chain

    program = mp_chain(hops).program
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, program, model, _LIMITS)
    assert len(result) >= 1
