"""TAB-COHERENCE benchmark: MSI protocol runs + conformance checking."""

from repro.coherence.checker import verify_run
from repro.coherence.machine import run_coherent
from repro.litmus.library import get_test
from repro.operational.sc import run_sc

_MP = get_test("MP").program
_IRIW = get_test("IRIW").program


def test_coherent_run_mp(benchmark):
    run = benchmark(run_coherent, _MP, 7)
    assert run.transactions > 0


def test_conformance_check_mp(benchmark):
    sc_outcomes = run_sc(_MP).outcomes
    run = run_coherent(_MP, seed=7)
    report = benchmark(verify_run, run, sc_outcomes)
    assert report.conforms


def test_many_schedules_iriw(benchmark):
    sc_outcomes = run_sc(_IRIW).outcomes

    def sweep():
        return [
            verify_run(run_coherent(_IRIW, seed=seed), sc_outcomes=sc_outcomes).conforms
            for seed in range(10)
        ]

    results = benchmark(sweep)
    assert all(results)
