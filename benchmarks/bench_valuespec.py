"""TAB-VALUESPEC benchmark: value-speculation enumeration modes."""

from repro.core.valuespec import enumerate_value_speculation
from repro.litmus.library import get_test

_MP = get_test("MP").program
_SB = get_test("SB").program


def test_safe_value_speculation_mp(benchmark):
    result = benchmark(enumerate_value_speculation, _MP, "sc", True)
    assert len(result) == 3


def test_naive_value_speculation_mp(benchmark):
    result = benchmark(enumerate_value_speculation, _MP, "sc", False)
    assert result.stats.unvalidated > 0


def test_naive_value_speculation_sb(benchmark):
    result = benchmark(enumerate_value_speculation, _SB, "sc", False)
    assert result.stats.unvalidated > 0


def test_valuespec_experiment(benchmark):
    from repro.experiments import valuespec_exp

    result = benchmark(valuespec_exp.run)
    assert result.passed, result.summary()
