"""Benchmark: coverage-guided fuzzing vs the blind stream, plus
crash-resume exactness.

Two gates on :mod:`repro.testing.coverage` (the PR's acceptance
criteria), recorded in one BENCH json:

* **Guided > blind**: at equal program budget and equal oracle set, the
  guided campaign must cover *strictly more* distinct
  (edge-kind × model × exhaustion-reason) grid cells than the blind
  ``mixed``-profile stream — i.e. mutation of rare-cell corpus entries,
  the profile bandit, and bloom dedup must actually buy coverage, not
  just ceremony.
* **Kill-resume exactness**: a campaign run in a subprocess and
  ``SIGKILL``-ed mid-flight, then resumed to the same total budget,
  must reproduce the uninterrupted campaign's coverage grid **and**
  mutation corpus byte-for-byte (same seed).  This exercises the WAL
  commit path under a real kill, not a simulated one.

Exits nonzero when either gate fails.  The CI smoke job runs this with
``--quick`` (smaller budget; both gates still bite).

Usage::

    PYTHONPATH=src python benchmarks/bench_fuzzcov.py [--quick]
        [--out BENCH_fuzzcov.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.testing.coverage import (
    blind_grid,
    load_campaign,
    run_guided_campaign,
)

#: The oracle subset the benchmark fuzzes with: the cheap single-model
#: axiomatic comparisons plus the chain/pruning oracles — enough model
#: diversity for a meaningful grid without the heavyweight parallel and
#: solver oracles dominating the wall clock.
BENCH_ORACLES = (
    "axiomatic-vs-sc",
    "axiomatic-vs-tso",
    "axiomatic-vs-pso",
    "inclusion-chain",
    "pruned-vs-unpruned",
)
#: Program budget of the full run (and of each of the three campaigns).
BUDGET = 48
#: Program budget under ``--quick`` (CI smoke).
QUICK_BUDGET = 24
#: Campaign seed — fixed so the gate is reproducible everywhere.
SEED = 2006
#: Guided batch size (small, so feedback kicks in early even in --quick).
BATCH_SIZE = 6
#: Seconds the kill-resume subprocess runs before SIGKILL.
KILL_AFTER = 3.0


def grid_fingerprint(campaign_dir: Path) -> tuple:
    """(grid json, corpus identity) of a campaign — what the resume gate
    compares byte-for-byte."""
    state = load_campaign(campaign_dir)
    corpus = [(r.index, r.digest, r.program, r.new_cells) for r in state.corpus]
    return state.grid.to_json(), corpus, state.budget_spent, state.next_index


def run_killed_then_resumed(workdir: Path, budget: int) -> tuple:
    """Run a campaign in a subprocess, SIGKILL it mid-flight, resume it
    in-process to the same total budget, and return its fingerprint."""
    campaign_dir = workdir / "killed"
    code = (
        "from repro.testing.coverage import run_guided_campaign\n"
        f"run_guided_campaign({str(campaign_dir)!r}, seed={SEED}, budget={budget}, "
        f"batch_size={BATCH_SIZE}, oracle_names={BENCH_ORACLES!r})\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parents[1] / "src"), env.get("PYTHONPATH", "")]
    )
    process = subprocess.Popen([sys.executable, "-c", code], env=env)
    time.sleep(KILL_AFTER)
    killed = process.poll() is None
    if killed:
        process.send_signal(signal.SIGKILL)
    process.wait()

    state = load_campaign(campaign_dir)
    spent = 0 if state is None else state.budget_spent
    remaining = budget - spent
    if remaining > 0:
        run_guided_campaign(
            campaign_dir,
            seed=SEED,
            budget=remaining,
            batch_size=BATCH_SIZE,
            oracle_names=BENCH_ORACLES,
            resume=spent > 0,
        )
    return grid_fingerprint(campaign_dir), killed, spent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"budget {QUICK_BUDGET} instead of {BUDGET} (CI smoke); "
        "both gates still apply",
    )
    parser.add_argument(
        "--out",
        default="BENCH_fuzzcov.json",
        help="path for the BENCH json (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    budget = QUICK_BUDGET if args.quick else BUDGET

    workdir = Path(tempfile.mkdtemp(prefix="bench-fuzzcov-"))
    try:
        # -- gate 1: guided coverage strictly beats blind -------------
        blind_start = time.perf_counter()
        blind = blind_grid(SEED, budget, oracle_names=BENCH_ORACLES)
        blind_seconds = time.perf_counter() - blind_start

        guided_start = time.perf_counter()
        run_guided_campaign(
            workdir / "guided",
            seed=SEED,
            budget=budget,
            batch_size=BATCH_SIZE,
            oracle_names=BENCH_ORACLES,
        )
        guided_seconds = time.perf_counter() - guided_start
        guided_state = load_campaign(workdir / "guided")

        blind_cells = blind.project()
        guided_cells = guided_state.grid.project()

        # -- gate 2: SIGKILL mid-campaign, resume, compare ------------
        uninterrupted = grid_fingerprint(workdir / "guided")
        resumed, killed, spent_at_kill = run_killed_then_resumed(workdir, budget)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    result = {
        "benchmark": "fuzz-coverage",
        "quick": args.quick,
        "seed": SEED,
        "budget": budget,
        "batch_size": BATCH_SIZE,
        "oracles": list(BENCH_ORACLES),
        "blind_seconds": blind_seconds,
        "guided_seconds": guided_seconds,
        "blind_cells_3d": len(blind_cells),
        "guided_cells_3d": len(guided_cells),
        "guided_cells_4d": len(guided_state.grid),
        "guided_only_cells": sorted(
            "|".join(cell) for cell in guided_cells - blind_cells
        ),
        "blind_only_cells": sorted(
            "|".join(cell) for cell in blind_cells - guided_cells
        ),
        "corpus_entries": len(guided_state.corpus),
        "subprocess_killed_midflight": killed,
        "budget_spent_at_kill": spent_at_kill,
        "resume_grid_identical": resumed == uninterrupted,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    print(
        f"BENCH fuzzcov: budget={budget} oracles={len(BENCH_ORACLES)} "
        f"seed={SEED} batch={BATCH_SIZE}"
    )
    print(
        f"BENCH blind={len(blind_cells)} guided={len(guided_cells)} "
        f"3-dim cells (+{len(guided_cells) - len(blind_cells)}); "
        f"blind={blind_seconds:.1f}s guided={guided_seconds:.1f}s"
    )
    print(
        f"BENCH kill-resume: killed={killed} spent-at-kill={spent_at_kill} "
        f"identical={resumed == uninterrupted}"
    )
    print(f"BENCH json written to {args.out}")

    status = 0
    if len(guided_cells) <= len(blind_cells):
        print(
            f"FAIL: guided generation covered {len(guided_cells)} 3-dim "
            f"cells, blind covered {len(blind_cells)} — guidance must win "
            f"strictly",
            file=sys.stderr,
        )
        status = 1
    if resumed != uninterrupted:
        print(
            "FAIL: killed-then-resumed campaign does not reproduce the "
            "uninterrupted run's grid/corpus",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
