"""TAB-OOO benchmark: the out-of-order core machine."""

from repro.litmus.library import get_test
from repro.ooo import run_ooo

_SB = get_test("SB").program
_IRIW = get_test("IRIW").program
_DEKKER = get_test("dekker-nofence").program


def test_ooo_single_run_sb(benchmark):
    run = benchmark(run_ooo, _SB, 7)
    assert run.steps > 0


def test_ooo_single_run_iriw(benchmark):
    run = benchmark(run_ooo, _IRIW, 7)
    assert run.steps > 0


def test_ooo_branchy_run(benchmark):
    run = benchmark(run_ooo, _DEKKER, 7)
    assert run.steps > 0


def test_ooo_schedule_sweep(benchmark):
    def sweep():
        return [run_ooo(_SB, seed=seed).registers for seed in range(30)]

    outcomes = benchmark(sweep)
    assert len(set(outcomes)) >= 3


def test_ooo_no_replay_run(benchmark):
    run = benchmark(run_ooo, _IRIW, 7, False)
    assert run.steps > 0
