"""FIG8_9 benchmark: address-aliasing speculation.

Times the full experiment (non-speculative vs speculative enumeration of
the pointer program) and the speculative enumeration alone, whose
rollback machinery is the §5.2 cost being measured.
"""

from repro.core.enumerate import enumerate_behaviors
from repro.experiments import fig89
from repro.models.registry import get_model


def test_fig89_experiment(benchmark):
    result = benchmark(fig89.run)
    assert result.passed, result.summary()


def test_fig89_speculative_enumeration(benchmark):
    program = fig89.build_program()
    model = get_model("weak-spec")
    result = benchmark(enumerate_behaviors, program, model)
    assert len(result) > 0


def test_fig89_rollback_heavy_enumeration(benchmark):
    program = fig89.build_aliasing_program()
    model = get_model("weak-spec")
    result = benchmark(enumerate_behaviors, program, model)
    assert result.stats.rolled_back > 0
