"""TAB-FENCESYNTH benchmark: minimal-fence search cost."""

from repro.analysis.fencesynth import synthesize_fences
from repro.litmus.library import get_test


def test_synthesize_sb_weak(benchmark):
    synthesis = benchmark(synthesize_fences, get_test("SB"), "weak")
    assert synthesis.fence_count == 2


def test_synthesize_mp_pso(benchmark):
    synthesis = benchmark(synthesize_fences, get_test("MP"), "pso")
    assert synthesis.fence_count == 1


def test_synthesize_iriw_weak(benchmark):
    synthesis = benchmark(synthesize_fences, get_test("IRIW"), "weak")
    assert synthesis.fence_count == 2


def test_fencesynth_experiment(benchmark):
    from repro.experiments import fencesynth_exp

    result = benchmark(fencesynth_exp.run)
    assert result.passed, result.summary()
