"""Benchmark: static fence repair vs enumerative robust synthesis.

Sweeps the litmus library under several models, computing each (test,
model) pair's minimal SC-robustness repairs twice — once with the
static set-cover solver of
:mod:`repro.analysis.static.fencerepair` (dataflow facts shared per
test), once with the enumerative
``synthesize_fences(..., target="robust")`` ground truth — and emits a
BENCH json recording, per pair, both wall-clocks, the fence counts,
and whether the solution lists agree byte-for-byte.

Exits nonzero when any completed pair disagrees, when any search is
truncated, or when the static sweep's aggregate speedup falls below
the 10x floor — the CI smoke job runs this with ``--quick``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fencesynth.py [--quick]
        [--out BENCH_fencesynth.json]

The ``test_*`` functions below keep the historical pytest-benchmark
entry points (``pytest benchmarks/bench_fencesynth.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.fencesynth import synthesize_fences
from repro.analysis.static.dataflow import compute_static_facts
from repro.analysis.static.fencerepair import repair_fences
from repro.litmus.library import all_tests, get_test

FULL_MODELS = ("sc", "tso", "naive-tso", "pso", "weak", "weak-spec", "weak-corr")
QUICK_MODELS = ("tso", "pso", "weak")

#: Acceptance floor for the static sweep's aggregate speedup.
MIN_SPEEDUP = 10.0


def run_benchmark(models: tuple[str, ...]) -> dict:
    rows = []
    mismatches: list[str] = []
    truncated: list[str] = []
    static_total = enum_total = 0.0
    for test in all_tests():
        start = time.perf_counter()
        facts = compute_static_facts(test.program)
        facts_seconds = time.perf_counter() - start
        static_total += facts_seconds
        for model in models:
            start = time.perf_counter()
            static = repair_fences(test.program, model, facts=facts)
            static_seconds = time.perf_counter() - start
            start = time.perf_counter()
            enum = synthesize_fences(
                test.program, model, target="robust", max_subsets=5000
            )
            enum_seconds = time.perf_counter() - start
            static_total += static_seconds
            enum_total += enum_seconds

            complete = static.complete and enum.complete
            if not complete:
                truncated.append(f"{test.name}/{model}")
                agree = None
            else:
                agree = sorted(tuple(s) for s in static.solutions) == sorted(
                    tuple(s) for s in enum.solutions
                )
                if not agree:
                    mismatches.append(f"{test.name}/{model}")
            rows.append(
                {
                    "test": test.name,
                    "model": model,
                    "static_fences": static.fence_count,
                    "enum_fences": enum.fence_count,
                    "solutions": len(static.solutions),
                    "exact": static.exact,
                    "seconds_static": static_seconds,
                    "seconds_enum": enum_seconds,
                    "complete": complete,
                    "agree": agree,
                }
            )
    speedup = enum_total / static_total if static_total > 0 else float("inf")
    return {
        "benchmark": "fencesynth",
        "models": list(models),
        "pairs": rows,
        "mismatches": mismatches,
        "truncated": truncated,
        "seconds_static_total": static_total,
        "seconds_enum_total": enum_total,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "all_agree": not mismatches and not truncated,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"sweep only {QUICK_MODELS} instead of {FULL_MODELS}",
    )
    parser.add_argument(
        "--out",
        default="BENCH_fencesynth.json",
        help="path for the BENCH json (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(QUICK_MODELS if args.quick else FULL_MODELS)
    result["quick"] = args.quick
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    print(
        f"BENCH fencesynth: {len(result['pairs'])} (test, model) pairs, "
        f"static {result['seconds_static_total']:.2f}s vs enumerative "
        f"{result['seconds_enum_total']:.2f}s ({result['speedup']:.1f}x)"
    )
    print(f"BENCH json written to {args.out}")

    status = 0
    if result["mismatches"]:
        print(
            f"FAIL: static and enumerative minimal fence sets differ on "
            f"{', '.join(result['mismatches'])}",
            file=sys.stderr,
        )
        status = 1
    if result["truncated"]:
        print(
            f"FAIL: search truncated on {', '.join(result['truncated'])}",
            file=sys.stderr,
        )
        status = 1
    if result["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x < {MIN_SPEEDUP:.0f}x floor",
            file=sys.stderr,
        )
        status = 1
    return status


# -- pytest-benchmark entry points ------------------------------------


def test_synthesize_sb_weak(benchmark):
    synthesis = benchmark(synthesize_fences, get_test("SB"), "weak")
    assert synthesis.fence_count == 2


def test_synthesize_mp_pso(benchmark):
    synthesis = benchmark(synthesize_fences, get_test("MP"), "pso")
    assert synthesis.fence_count == 1


def test_synthesize_iriw_weak(benchmark):
    synthesis = benchmark(synthesize_fences, get_test("IRIW"), "weak")
    assert synthesis.fence_count == 2


def test_repair_library_weak(benchmark):
    def sweep():
        return [
            repair_fences(test.program, "weak") for test in all_tests()
        ]

    repairs = benchmark(sweep)
    assert all(repair.complete for repair in repairs)


def test_fencerepair_quick_gates(benchmark):
    result = benchmark(run_benchmark, QUICK_MODELS)
    assert result["all_agree"], (result["mismatches"], result["truncated"])


if __name__ == "__main__":
    raise SystemExit(main())
