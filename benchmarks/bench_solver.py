"""Benchmark: SAT/AllSAT behavior solver vs axiomatic enumeration.

Two gates, both enforced by exit status:

* **Agreement** — over the full litmus library × several models the
  solver's behavior set must be byte-identical (``loadstore_key``) to
  the enumerator's, with both sides complete.
* **Speedup** — on the *wide* program family (t threads, each storing a
  private location then loading a shared never-written one) the
  enumerator walks a 2^t resolution-order lattice to find a single
  behavior while the solver pays one SAT proposal plus one O(t)
  replay; the aggregate solver speedup on that family must clear the
  floor below.

Emits a BENCH json recording every (test, model) pair's wall-clocks,
behavior counts, and agreement — the CI smoke job runs this with
``--quick``.

Usage::

    PYTHONPATH=src python benchmarks/bench_solver.py [--quick]
        [--out BENCH_solver.json]

The ``test_*`` functions below keep the historical pytest-benchmark
entry points (``pytest benchmarks/bench_solver.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.solver import solve_behaviors_with_stats
from repro.core.enumerate import enumerate_behaviors
from repro.isa.assembler import assemble_program
from repro.isa.program import Program
from repro.litmus.library import all_tests, get_test
from repro.models import get_model

FULL_MODELS = ("sc", "tso", "pso", "weak")
QUICK_MODELS = ("tso", "weak")

FULL_WIDTHS = (8, 10, 12)
QUICK_WIDTHS = (8, 10)
WIDE_MODELS = ("sc", "weak")

#: Acceptance floor for the solver's aggregate speedup on the wide family.
MIN_SPEEDUP = 5.0


def wide_program(threads: int) -> Program:
    """t threads × {store a private location; load a shared, never-stored
    one}: exactly one behavior, but the enumerator's state space is the
    full 2^t lattice of which loads have resolved."""
    lines = [f"test wide-{threads}"]
    for i in range(threads):
        lines.append(f"thread P{i}")
        lines.append(f"    S y{i}, 1")
        lines.append(f"    r{i} = L x")
    return assemble_program("\n".join(lines))


def _keys(result) -> list[str]:
    return sorted(repr(e.loadstore_key()) for e in result.executions)


def run_benchmark(models: tuple[str, ...], widths: tuple[int, ...]) -> dict:
    rows = []
    mismatches: list[str] = []
    truncated: list[str] = []

    # -- agreement gate: the litmus library -----------------------------
    for test in all_tests():
        for model_name in models:
            model = get_model(model_name)
            start = time.perf_counter()
            enumerated = enumerate_behaviors(test.program, model)
            enum_seconds = time.perf_counter() - start
            start = time.perf_counter()
            solved, stats = solve_behaviors_with_stats(test.program, model_name)
            solver_seconds = time.perf_counter() - start

            complete = enumerated.complete and solved.complete
            if not complete:
                truncated.append(f"{test.name}/{model_name}")
                agree = None
            else:
                agree = _keys(enumerated) == _keys(solved)
                if not agree:
                    mismatches.append(f"{test.name}/{model_name}")
            rows.append(
                {
                    "test": test.name,
                    "model": model_name,
                    "behaviors": len(solved.executions),
                    "proposals": stats.proposals,
                    "infeasible": stats.infeasible,
                    "conflicts": stats.conflicts,
                    "seconds_enum": enum_seconds,
                    "seconds_solver": solver_seconds,
                    "complete": complete,
                    "agree": agree,
                }
            )

    # -- speedup gate: the wide family ----------------------------------
    wide_rows = []
    enum_total = solver_total = 0.0
    for threads in widths:
        program = wide_program(threads)
        for model_name in WIDE_MODELS:
            model = get_model(model_name)
            start = time.perf_counter()
            enumerated = enumerate_behaviors(program, model)
            enum_seconds = time.perf_counter() - start
            start = time.perf_counter()
            solved, stats = solve_behaviors_with_stats(program, model_name)
            solver_seconds = time.perf_counter() - start
            enum_total += enum_seconds
            solver_total += solver_seconds

            complete = enumerated.complete and solved.complete
            if not complete:
                truncated.append(f"wide-{threads}/{model_name}")
                agree = None
            else:
                agree = _keys(enumerated) == _keys(solved)
                if not agree:
                    mismatches.append(f"wide-{threads}/{model_name}")
            wide_rows.append(
                {
                    "test": f"wide-{threads}",
                    "model": model_name,
                    "behaviors": len(solved.executions),
                    "explored_enum": enumerated.stats.explored,
                    "proposals": stats.proposals,
                    "seconds_enum": enum_seconds,
                    "seconds_solver": solver_seconds,
                    "complete": complete,
                    "agree": agree,
                }
            )

    speedup = enum_total / solver_total if solver_total > 0 else float("inf")
    return {
        "benchmark": "solver",
        "models": list(models),
        "widths": list(widths),
        "pairs": rows,
        "wide_pairs": wide_rows,
        "mismatches": mismatches,
        "truncated": truncated,
        "seconds_enum_wide_total": enum_total,
        "seconds_solver_wide_total": solver_total,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "all_agree": not mismatches and not truncated,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"sweep {QUICK_MODELS} and widths {QUICK_WIDTHS} instead of "
        f"{FULL_MODELS} and {FULL_WIDTHS}",
    )
    parser.add_argument(
        "--out",
        default="BENCH_solver.json",
        help="path for the BENCH json (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(
        QUICK_MODELS if args.quick else FULL_MODELS,
        QUICK_WIDTHS if args.quick else FULL_WIDTHS,
    )
    result["quick"] = args.quick
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")

    print(
        f"BENCH solver: {len(result['pairs'])} library pairs agree, "
        f"wide family enum {result['seconds_enum_wide_total']:.2f}s vs "
        f"solver {result['seconds_solver_wide_total']:.2f}s "
        f"({result['speedup']:.1f}x)"
    )
    print(f"BENCH json written to {args.out}")

    status = 0
    if result["mismatches"]:
        print(
            f"FAIL: solver and enumerator behavior sets differ on "
            f"{', '.join(result['mismatches'])}",
            file=sys.stderr,
        )
        status = 1
    if result["truncated"]:
        print(
            f"FAIL: enumeration truncated on {', '.join(result['truncated'])}",
            file=sys.stderr,
        )
        status = 1
    if result["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: wide-family speedup {result['speedup']:.1f}x < "
            f"{MIN_SPEEDUP:.0f}x floor",
            file=sys.stderr,
        )
        status = 1
    return status


# -- pytest-benchmark entry points ------------------------------------


def test_solve_sb_tso(benchmark):
    program = get_test("SB").program
    result = benchmark(lambda: solve_behaviors_with_stats(program, "tso")[0])
    assert len(result.executions) == 4


def test_solve_iriw_weak(benchmark):
    program = get_test("IRIW").program
    result = benchmark(lambda: solve_behaviors_with_stats(program, "weak")[0])
    assert result.complete


def test_solve_wide_sc(benchmark):
    program = wide_program(10)
    result = benchmark(lambda: solve_behaviors_with_stats(program, "sc")[0])
    assert len(result.executions) == 1


def test_solver_quick_gates(benchmark):
    result = benchmark(run_benchmark, QUICK_MODELS, QUICK_WIDTHS)
    assert result["all_agree"], (result["mismatches"], result["truncated"])
    assert result["speedup"] >= MIN_SPEEDUP, result["speedup"]


if __name__ == "__main__":
    raise SystemExit(main())
