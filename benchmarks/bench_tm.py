"""TAB-TM benchmark: transactional filtering cost."""

from repro.experiments.tm_exp import COUNTER_BLOCKS, build_counter
from repro.tm import enumerate_transactional, transactional_witness

_COUNTER = build_counter()


def test_transactional_counter_sc(benchmark):
    result = benchmark(enumerate_transactional, _COUNTER, COUNTER_BLOCKS, "sc")
    assert result.rejected > 0


def test_transactional_counter_weak(benchmark):
    result = benchmark(enumerate_transactional, _COUNTER, COUNTER_BLOCKS, "weak")
    assert len(result) > 0


def test_witness_search(benchmark):
    executions = enumerate_transactional(_COUNTER, COUNTER_BLOCKS, "sc").executions

    def witnesses():
        return [transactional_witness(e, COUNTER_BLOCKS) for e in executions]

    results = benchmark(witnesses)
    assert all(witness is not None for witness in results)


def test_tm_experiment(benchmark):
    from repro.experiments import tm_exp

    result = benchmark(tm_exp.run)
    assert result.passed, result.summary()
