"""Benchmark: the ≺-linearization dataflow machine vs the axiomatic
enumerator on the same programs (the two sides of TAB-XVAL's weak rows)."""

from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.operational.dataflow import run_dataflow

_SB = get_test("SB").program
_IRIW = get_test("IRIW").program


def test_dataflow_weak_sb(benchmark):
    result = benchmark(run_dataflow, _SB, "weak")
    assert len(result.outcomes) == 4


def test_axiomatic_weak_sb(benchmark):
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, _SB, model)
    assert result.register_outcomes() == run_dataflow(_SB, "weak").outcomes


def test_dataflow_weak_iriw(benchmark):
    result = benchmark(run_dataflow, _IRIW, "weak")
    assert len(result.outcomes) == 16


def test_axiomatic_weak_iriw(benchmark):
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, _IRIW, model)
    assert result.register_outcomes() == run_dataflow(_IRIW, "weak").outcomes
