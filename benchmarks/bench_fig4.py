"""FIG4 benchmark: rule b — observers precede overwriting stores."""

from repro.core.enumerate import enumerate_behaviors
from repro.experiments import fig4
from repro.models.registry import get_model


def test_fig4_experiment(benchmark):
    result = benchmark(fig4.run)
    assert result.passed, result.summary()


def test_fig4_enumeration(benchmark):
    program = fig4.build_program()
    model = get_model("weak")
    result = benchmark(enumerate_behaviors, program, model)
    assert len(result) > 0
