"""TAB-XVAL benchmark: axiomatic vs operational equivalence.

Times both formulations on the same programs and re-asserts outcome-set
equality — the repository's strongest end-to-end validation.
"""

from repro.core.enumerate import enumerate_behaviors
from repro.litmus.library import get_test
from repro.models.registry import get_model
from repro.operational.sc import run_sc
from repro.operational.storebuffer import run_tso

_SB = get_test("SB").program
_IRIW = get_test("IRIW").program


def test_axiomatic_sc_sb(benchmark):
    model = get_model("sc")
    result = benchmark(enumerate_behaviors, _SB, model)
    assert result.register_outcomes() == run_sc(_SB).outcomes


def test_operational_sc_sb(benchmark):
    result = benchmark(run_sc, _SB)
    assert len(result.outcomes) == 3


def test_axiomatic_tso_sb(benchmark):
    model = get_model("tso")
    result = benchmark(enumerate_behaviors, _SB, model)
    assert result.register_outcomes() == run_tso(_SB).outcomes


def test_operational_tso_sb(benchmark):
    result = benchmark(run_tso, _SB)
    assert len(result.outcomes) == 4


def test_axiomatic_sc_iriw(benchmark):
    model = get_model("sc")
    result = benchmark(enumerate_behaviors, _IRIW, model)
    assert result.register_outcomes() == run_sc(_IRIW).outcomes


def test_operational_sc_iriw(benchmark):
    result = benchmark(run_sc, _IRIW)
    assert result.terminal_states > 0
